/**
 * @file
 * Trainable layers with explicit forward/backward passes.
 *
 * This is the from-scratch training substrate used by the extended ADMM
 * solution framework (Section 4.2): a direct-convolution autodiff stack
 * sufficient to train the small CNNs the accuracy experiments use.
 * Layers cache what they need between forward and backward; a layer is
 * used for exactly one in-flight batch at a time.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/conv_desc.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace patdnn {

/** A learnable parameter: value, gradient, and an optional freeze mask. */
struct ParamRef
{
    Tensor* value = nullptr;
    Tensor* grad = nullptr;
    std::string name;
};

/** Base class for trainable layers. */
class TrainLayer
{
  public:
    virtual ~TrainLayer() = default;

    /** Compute outputs for an NCHW (or [N, features]) batch. */
    virtual Tensor forward(const Tensor& in, bool training) = 0;

    /** Propagate gradients; also accumulates parameter grads. */
    virtual Tensor backward(const Tensor& grad_out) = 0;

    /** Learnable parameters (empty for stateless layers). */
    virtual std::vector<ParamRef> params() { return {}; }

    /**
     * Deep copy including parameters, running statistics and any
     * cached activations. Lets a trained Net be duplicated so several
     * consumers (e.g. the pruning-scheme comparisons) can each mutate
     * their own copy of one training run.
     */
    virtual std::unique_ptr<TrainLayer> clone() const = 0;

    /** Reset accumulated gradients to zero. */
    void zeroGrads();

    virtual std::string name() const = 0;
};

/** 2-D convolution (groups == 1) with bias. */
class Conv2dLayer : public TrainLayer
{
  public:
    /** Geometry from desc; weights He-initialized from rng. */
    Conv2dLayer(ConvDesc desc, Rng& rng);

    Tensor forward(const Tensor& in, bool training) override;
    Tensor backward(const Tensor& grad_out) override;
    std::vector<ParamRef> params() override;
    std::string name() const override { return desc_.name; }

    std::unique_ptr<TrainLayer>
    clone() const override
    {
        return std::make_unique<Conv2dLayer>(*this);
    }

    const ConvDesc& desc() const { return desc_; }
    Tensor& weight() { return weight_; }
    const Tensor& weight() const { return weight_; }
    Tensor& weightGrad() { return weight_grad_; }

  private:
    ConvDesc desc_;
    Tensor weight_;       ///< OIHW.
    Tensor bias_;
    Tensor weight_grad_;
    Tensor bias_grad_;
    Tensor cached_in_;
};

/** Fully connected layer. */
class FcLayer : public TrainLayer
{
  public:
    FcLayer(std::string name, int64_t in_features, int64_t out_features, Rng& rng);

    Tensor forward(const Tensor& in, bool training) override;
    Tensor backward(const Tensor& grad_out) override;
    std::vector<ParamRef> params() override;
    std::string name() const override { return name_; }

    std::unique_ptr<TrainLayer>
    clone() const override
    {
        return std::make_unique<FcLayer>(*this);
    }

    Tensor& weight() { return weight_; }

  private:
    std::string name_;
    int64_t in_features_;
    int64_t out_features_;
    Tensor weight_;  ///< [out, in].
    Tensor bias_;
    Tensor weight_grad_;
    Tensor bias_grad_;
    Tensor cached_in_;
};

/** Elementwise ReLU. */
class ReluLayer : public TrainLayer
{
  public:
    explicit ReluLayer(std::string name) : name_(std::move(name)) {}
    Tensor forward(const Tensor& in, bool training) override;
    Tensor backward(const Tensor& grad_out) override;
    std::string name() const override { return name_; }

    std::unique_ptr<TrainLayer>
    clone() const override
    {
        return std::make_unique<ReluLayer>(*this);
    }

  private:
    std::string name_;
    Tensor cached_in_;
};

/** Max pooling with square window. */
class MaxPoolLayer : public TrainLayer
{
  public:
    MaxPoolLayer(std::string name, int64_t k, int64_t stride)
        : name_(std::move(name)), k_(k), stride_(stride)
    {
    }
    Tensor forward(const Tensor& in, bool training) override;
    Tensor backward(const Tensor& grad_out) override;
    std::string name() const override { return name_; }

    std::unique_ptr<TrainLayer>
    clone() const override
    {
        return std::make_unique<MaxPoolLayer>(*this);
    }

  private:
    std::string name_;
    int64_t k_;
    int64_t stride_;
    Shape in_shape_;
    std::vector<int64_t> argmax_;
};

/** Per-channel batch normalization (training-mode statistics). */
class BatchNormLayer : public TrainLayer
{
  public:
    BatchNormLayer(std::string name, int64_t channels);
    Tensor forward(const Tensor& in, bool training) override;
    Tensor backward(const Tensor& grad_out) override;
    std::vector<ParamRef> params() override;
    std::string name() const override { return name_; }

    std::unique_ptr<TrainLayer>
    clone() const override
    {
        return std::make_unique<BatchNormLayer>(*this);
    }

  private:
    std::string name_;
    int64_t channels_;
    Tensor gamma_, beta_, gamma_grad_, beta_grad_;
    Tensor running_mean_, running_var_;
    // Cached batch statistics for backward.
    Tensor cached_norm_;
    std::vector<double> mean_, inv_std_;
    Shape in_shape_;
};

/** Flatten NCHW -> [N, C*H*W]. */
class FlattenLayer : public TrainLayer
{
  public:
    explicit FlattenLayer(std::string name) : name_(std::move(name)) {}
    Tensor forward(const Tensor& in, bool training) override;
    Tensor backward(const Tensor& grad_out) override;
    std::string name() const override { return name_; }

    std::unique_ptr<TrainLayer>
    clone() const override
    {
        return std::make_unique<FlattenLayer>(*this);
    }

  private:
    std::string name_;
    Shape in_shape_;
};

/**
 * Softmax cross-entropy head. Not a TrainLayer: takes logits + labels,
 * returns mean loss and writes d(loss)/d(logits).
 */
double softmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                           Tensor& grad_logits);

/** Index of the max logit per row. */
std::vector<int> argmaxRows(const Tensor& logits);

}  // namespace patdnn
