#include "train/trainer.h"

#include <numeric>

#include "util/logging.h"

namespace patdnn {

double
evalAccuracy(Net& net, const SyntheticShapes& data, const std::vector<Example>& pool,
             int64_t batch_size)
{
    if (pool.empty())
        return 0.0;
    std::vector<int64_t> indices(pool.size());
    std::iota(indices.begin(), indices.end(), 0);
    int64_t correct = 0;
    for (int64_t begin = 0; begin < static_cast<int64_t>(pool.size());
         begin += batch_size) {
        int64_t end = std::min<int64_t>(begin + batch_size,
                                        static_cast<int64_t>(pool.size()));
        Tensor batch;
        std::vector<int> labels;
        data.makeBatch(pool, indices, begin, end, batch, labels);
        Tensor logits = net.forward(batch, /*training=*/false);
        std::vector<int> pred = argmaxRows(logits);
        for (size_t i = 0; i < pred.size(); ++i)
            if (pred[i] == labels[i])
                ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(pool.size());
}

TrainResult
trainNet(Net& net, const SyntheticShapes& data, const TrainConfig& cfg)
{
    Rng rng(cfg.seed);
    std::vector<ParamRef> params = net.params();
    std::unique_ptr<Optimizer> opt;
    if (cfg.use_adam)
        opt = std::make_unique<Adam>(params, cfg.lr);
    else
        opt = std::make_unique<Sgd>(params, cfg.lr);

    std::vector<int64_t> indices(data.train().size());
    std::iota(indices.begin(), indices.end(), 0);

    double last_loss = 0.0;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        rng.shuffle(indices);
        double epoch_loss = 0.0;
        int64_t batches = 0;
        for (int64_t begin = 0; begin < static_cast<int64_t>(indices.size());
             begin += cfg.batch_size) {
            int64_t end = std::min<int64_t>(begin + cfg.batch_size,
                                            static_cast<int64_t>(indices.size()));
            Tensor batch;
            std::vector<int> labels;
            data.makeBatch(data.train(), indices, begin, end, batch, labels);
            net.zeroGrads();
            Tensor logits = net.forward(batch, /*training=*/true);
            Tensor grad_logits;
            double loss = softmaxCrossEntropy(logits, labels, grad_logits);
            net.backward(grad_logits);
            if (cfg.grad_hook)
                cfg.grad_hook(net);
            opt->step();
            if (cfg.post_step_hook)
                cfg.post_step_hook(net);
            epoch_loss += loss;
            ++batches;
        }
        last_loss = epoch_loss / static_cast<double>(std::max<int64_t>(1, batches));
        if (cfg.verbose)
            logMessage(LogLevel::kInfo,
                       "epoch " + std::to_string(epoch) + " loss " +
                           std::to_string(last_loss));
    }

    TrainResult res;
    res.final_loss = last_loss;
    res.train_accuracy = evalAccuracy(net, data, data.train());
    res.test_accuracy = evalAccuracy(net, data, data.test());
    return res;
}

std::vector<std::vector<uint8_t>>
captureMasks(Net& net)
{
    std::vector<std::vector<uint8_t>> masks;
    for (Tensor* w : net.convWeights()) {
        std::vector<uint8_t> m(static_cast<size_t>(w->numel()), 0);
        for (int64_t i = 0; i < w->numel(); ++i)
            m[static_cast<size_t>(i)] = (*w)[i] != 0.0f ? 1 : 0;
        masks.push_back(std::move(m));
    }
    return masks;
}

void
applyMaskToGrads(Net& net, const std::vector<std::vector<uint8_t>>& masks)
{
    auto convs = net.convLayers();
    PATDNN_CHECK_EQ(convs.size(), masks.size(), "mask count");
    for (size_t i = 0; i < convs.size(); ++i) {
        Tensor& g = convs[i]->weightGrad();
        for (int64_t j = 0; j < g.numel(); ++j)
            if (!masks[i][static_cast<size_t>(j)])
                g[j] = 0.0f;
    }
}

void
applyMaskToWeights(Net& net, const std::vector<std::vector<uint8_t>>& masks)
{
    auto convs = net.convLayers();
    PATDNN_CHECK_EQ(convs.size(), masks.size(), "mask count");
    for (size_t i = 0; i < convs.size(); ++i) {
        Tensor& w = convs[i]->weight();
        for (int64_t j = 0; j < w.numel(); ++j)
            if (!masks[i][static_cast<size_t>(j)])
                w[j] = 0.0f;
    }
}

}  // namespace patdnn
