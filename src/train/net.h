/**
 * @file
 * Net: an ordered stack of trainable layers plus factory functions for
 * the small CNN topologies the accuracy experiments train (a VGG-style
 * plain stack and a ResNet-style wider stack; see the substitution
 * table in docs/ARCHITECTURE.md).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "train/layers.h"

namespace patdnn {

/** A sequential trainable network. */
class Net
{
  public:
    Net() = default;
    explicit Net(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    /** Append a layer; returns the layer index. */
    int add(std::unique_ptr<TrainLayer> layer);

    /** Forward pass through all layers. */
    Tensor forward(const Tensor& in, bool training);

    /** Backward pass; call after forward(in, true). */
    void backward(const Tensor& grad_logits);

    /** All learnable parameters in layer order. */
    std::vector<ParamRef> params();

    /** Zero all parameter gradients. */
    void zeroGrads();

    /** Pointers to the weight tensors of all conv layers. */
    std::vector<Tensor*> convWeights();

    /** Pointers to the conv layers themselves. */
    std::vector<Conv2dLayer*> convLayers();

    /**
     * Deep copy of the whole net (parameters, BN running statistics,
     * cached state). A trained net can be cloned once per consumer so
     * each pruning scheme or experiment mutates its own copy of a
     * single training run.
     */
    Net clone() const;

    std::vector<std::unique_ptr<TrainLayer>>& layers() { return layers_; }

  private:
    std::string name_;
    std::vector<std::unique_ptr<TrainLayer>> layers_;
};

/**
 * VGG-style plain CNN for `size` x `size` inputs: conv3x3 stacks with
 * BN+ReLU and maxpool between stages. Channel widths scale with `width`.
 */
Net buildVggStyleNet(int classes, int64_t size, int64_t channels, int64_t width,
                     uint64_t seed);

/** Wider/deeper variant standing in for ResNet-50 in accuracy tables. */
Net buildResStyleNet(int classes, int64_t size, int64_t channels, int64_t width,
                     uint64_t seed);

}  // namespace patdnn
