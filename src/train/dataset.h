/**
 * @file
 * SyntheticShapes: the stand-in for ImageNet/CIFAR-10 in the accuracy
 * experiments (see the substitution table in docs/ARCHITECTURE.md).
 *
 * Each class is a procedurally rendered geometric template (oriented
 * bars, crosses, rings, corner blobs, ...) perturbed with per-sample
 * jitter, brightness and Gaussian noise, so a small CNN must learn
 * spatially localized, orientation-selective features — the property
 * that makes kernel-pattern pruning interesting in the first place
 * (Section 3.1's human-visual-system argument).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace patdnn {

/** One labeled example. */
struct Example
{
    Tensor image;  ///< CHW float image in [0, 1].
    int label = 0;
};

/** An in-memory synthetic classification dataset. */
class SyntheticShapes
{
  public:
    /**
     * Generate `train_count` + `test_count` examples.
     *
     * @param classes number of shape classes (2..10)
     * @param size spatial resolution (square images)
     * @param channels image channels (shape drawn in all, color-jittered)
     * @param seed RNG seed; same seed -> identical dataset
     */
    SyntheticShapes(int classes, int64_t size, int64_t channels,
                    int64_t train_count, int64_t test_count, uint64_t seed);

    int classes() const { return classes_; }
    int64_t size() const { return size_; }
    int64_t channels() const { return channels_; }

    const std::vector<Example>& train() const { return train_; }
    const std::vector<Example>& test() const { return test_; }

    /**
     * Pack examples[indices[begin..end)] into an NCHW batch + labels.
     */
    void makeBatch(const std::vector<Example>& pool, const std::vector<int64_t>& indices,
                   int64_t begin, int64_t end, Tensor& batch,
                   std::vector<int>& labels) const;

  private:
    Example renderExample(int label, Rng& rng) const;

    int classes_;
    int64_t size_;
    int64_t channels_;
    std::vector<Example> train_;
    std::vector<Example> test_;
};

}  // namespace patdnn
