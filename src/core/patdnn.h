/**
 * @file
 * PatDNN public API — the Fig. 5 end-to-end pipeline in three calls:
 *
 *   1. compress(): pattern-based training stage — design a pattern set
 *      and run the extended-ADMM kernel-pattern + connectivity pruning
 *      on a trainable net (or one-shot projection on zoo weights);
 *   2. compileLayer(): execution-code-generation stage — FKR, FKW
 *      packing, LR construction and parameter auto-tuning for a device;
 *   3. the returned CompiledLayer's PatternConv engine runs inference
 *      (whole-model execution lives in CompiledModel, rt/framework.h).
 *
 * Deployment extends the pipeline past Fig. 5: saveModel()/loadModel()
 * freeze a CompiledModel into a distributable artifact (header v3
 * records the compile options + device fingerprint, so a mismatched
 * host gets a diagnostic instead of a failed invariant), serve()
 * stands up an async batched InferenceServer — per-request deadlines,
 * cancellation, and a linger window that coalesces sparse request
 * streams — and ModelRegistry serves several named artifacts from one
 * process over one shared compute pool (src/serve/).
 *
 * Everything here is a thin, documented facade over the subsystem
 * libraries; include this single header to use the framework.
 */
#pragma once

#include "graph/builder.h"
#include "graph/passes.h"
#include "nn/zoo.h"
#include "prune/admm.h"
#include "prune/pruners.h"
#include "rt/framework.h"
#include "rt/load_analysis.h"
#include "rt/tuner.h"
#include "serve/artifact.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/session.h"
#include "sparse/csr.h"
#include "sparse/fkw.h"

namespace patdnn {

/** Result of the pattern-based training stage on a trainable net. */
struct CompressResult
{
    PatternSet pattern_set;
    AdmmResult admm;
};

/**
 * Stage 1 on a trainable net: mine the pattern set from the trained
 * weights, then run joint kernel-pattern + connectivity ADMM pruning
 * with masked retraining.
 */
CompressResult compress(Net& net, const SyntheticShapes& data, int pattern_count = 8,
                        double connectivity_rate = 3.6, const AdmmConfig& cfg = {});

/**
 * Stage 2 for a single layer: prune a weight copy, reorder, pack to
 * FKW, build the LR and (optionally) auto-tune on the device. Returns
 * the ready-to-run executor plus its storage.
 */
struct CompiledLayer
{
    std::unique_ptr<FkwLayer> fkw;
    LayerwiseRep lr;
    std::unique_ptr<PatternConv> engine;
};

CompiledLayer compileLayer(const ConvDesc& desc, Tensor weight,
                           const PatternSet& set, double connectivity_rate,
                           const DeviceSpec& device, bool auto_tune = false);

/**
 * Freeze a compiled model into a versioned binary artifact at `path`
 * (compile once, distribute everywhere). False + *error on failure.
 */
bool saveModel(const CompiledModel& model, const std::string& path,
               std::string* error = nullptr);

/**
 * Load an artifact for `device`. The result is immutable and intended
 * to be shared: hand it to any number of InferenceSession /
 * InferenceServer instances. Null + *error on a missing, truncated or
 * corrupted file, or a device-fingerprint mismatch (see artifact.h).
 */
std::shared_ptr<CompiledModel> loadModel(const std::string& path,
                                         const DeviceSpec& device,
                                         std::string* error = nullptr);

/** Strict/diagnostic overload: load options + header provenance. */
std::shared_ptr<CompiledModel> loadModel(const std::string& path,
                                         const DeviceSpec& device,
                                         const ArtifactLoadOptions& opts,
                                         std::string* error = nullptr,
                                         ArtifactInfo* info = nullptr);

/** Stand up an async batched inference server over a shared model. */
std::unique_ptr<InferenceServer> serve(std::shared_ptr<const CompiledModel> model,
                                       const ServerOptions& opts = {});

/** Stand up a multi-model registry (serve several named artifacts from
 * one process over one shared compute pool). */
std::unique_ptr<ModelRegistry> serveRegistry(const RegistryOptions& opts = {});

}  // namespace patdnn
