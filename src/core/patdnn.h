/**
 * @file
 * PatDNN public API — the Fig. 5 end-to-end pipeline in three calls:
 *
 *   1. compress(): pattern-based training stage — design a pattern set
 *      and run the extended-ADMM kernel-pattern + connectivity pruning
 *      on a trainable net (or one-shot projection on zoo weights);
 *   2. compileLayer(): execution-code-generation stage — FKR, FKW
 *      packing, LR construction and parameter auto-tuning for a device;
 *   3. the returned CompiledLayer's PatternConv engine runs inference
 *      (whole-model execution lives in CompiledModel, rt/framework.h).
 *
 * Deployment extends the pipeline past Fig. 5: saveModel()/loadModel()
 * freeze a CompiledModel into a distributable artifact (header v3
 * records the compile options + device fingerprint, so a mismatched
 * host gets a diagnostic instead of a failed invariant; v4 adds the
 * offline activation MemoryPlan, so sessions on the serving host run
 * out of one peak-live-sized arena — rt/memplan.h — with
 * CompileOptions::enable_memory_plan controlling plan creation at
 * compile time), serve()
 * stands up an async batched InferenceServer — per-request deadlines,
 * cancellation, and a linger window that coalesces sparse request
 * streams — and ModelRegistry serves several named artifacts from one
 * process over one shared compute pool (src/serve/). Above the
 * registry sits the horizontal-scale tier: AdmissionController
 * (serve/admission.h) holds the process-wide queued-work budget with
 * weighted fair-share shedding, and ShardRouter (serve/router.h)
 * spreads a model's traffic across N server replicas with
 * consistent-hash or least-loaded routing, per-replica health
 * ejection, and transparent failover.
 *
 * The v1 error contract (src/util/status.h): every facade call that
 * can fail for a caller-visible reason returns Status or Result<T>
 * with a typed ErrorCode; serve-side futures fail with ServeError
 * carrying the same codes. The Compiler class (core/compiler.h) is the
 * pipeline-shaped entry point with typed errors on malformed inputs;
 * the free functions below are the historical thin wrappers and keep
 * CHECK-abort semantics for invariant violations.
 *
 * Everything here is a thin, documented facade over the subsystem
 * libraries; include this single header to use the framework.
 */
#pragma once

#include "core/compiler.h"
#include "graph/builder.h"
#include "graph/passes.h"
#include "nn/zoo.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "prune/admm.h"
#include "prune/pruners.h"
#include "rt/framework.h"
#include "rt/load_analysis.h"
#include "rt/tuner.h"
#include "serve/admission.h"
#include "serve/artifact.h"
#include "serve/registry.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/session.h"
#include "sparse/csr.h"
#include "sparse/fkw.h"
#include "util/status.h"

namespace patdnn {

/**
 * Stage 1 on a trainable net: mine the pattern set from the trained
 * weights, then run joint kernel-pattern + connectivity ADMM pruning
 * with masked retraining. Thin wrapper over Compiler::compress()
 * (which adds typed validation).
 */
CompressResult compress(Net& net, const SyntheticShapes& data, int pattern_count = 8,
                        double connectivity_rate = 3.6, const AdmmConfig& cfg = {});

/**
 * Stage 2 for a single layer: prune a weight copy, reorder, pack to
 * FKW, build the LR and (optionally) auto-tune on the device. Returns
 * the ready-to-run executor plus its storage. Thin wrapper over
 * Compiler::compileLayer() — malformed inputs abort here where the
 * Compiler returns kInvalidArgument; auto-tuned shapes share the same
 * process TuneCache.
 */
CompiledLayer compileLayer(const ConvDesc& desc, Tensor weight,
                           const PatternSet& set, double connectivity_rate,
                           const DeviceSpec& device, bool auto_tune = false);

/**
 * Freeze a compiled model into a versioned binary artifact at `path`
 * (compile once, distribute everywhere). kUnavailable on I/O failure.
 */
Status saveModel(const CompiledModel& model, const std::string& path);

/**
 * Load an artifact for `device`. The result is immutable and intended
 * to be shared: hand it to any number of InferenceSession /
 * InferenceServer instances. Failure codes: kNotFound (missing file),
 * kDataLoss (truncated or corrupted bytes — Status::detail() carries
 * the artifact_detail slug), kInvalidArgument (unsupported format
 * version), kDeviceMismatch (fingerprint this host cannot satisfy;
 * see artifact.h). `info`, when non-null, receives header provenance
 * and non-fatal warnings even on success.
 */
Result<std::shared_ptr<CompiledModel>> loadModel(
    const std::string& path, const DeviceSpec& device,
    const ArtifactLoadOptions& opts = {}, ArtifactInfo* info = nullptr);

/** Stand up an async batched inference server over a shared model. */
std::unique_ptr<InferenceServer> serve(std::shared_ptr<const CompiledModel> model,
                                       const ServerOptions& opts = {});

/** Stand up a multi-model registry (serve several named artifacts from
 * one process over one shared compute pool). */
std::unique_ptr<ModelRegistry> serveRegistry(const RegistryOptions& opts = {});

}  // namespace patdnn
