/**
 * @file
 * The Compiler pipeline facade: the Fig. 5 pipeline as one object with
 * typed errors.
 *
 * Construct a Compiler once with the target DeviceSpec and the
 * CompileOptions (pattern count, connectivity rates, optimization
 * switches), then drive the stages:
 *
 *   Compiler compiler(makeSnapdragon855());
 *   auto compressed = compiler.compress(net, data);       // stage 1
 *   auto layer = compiler.compileLayer(desc, w, set);     // stage 2
 *   auto model = compiler.compile(trained_model);         // stages 2-3
 *
 * Every entry point returns Status / Result<T>: a malformed conv
 * descriptor, an empty or geometry-mismatched pattern set, or nonsense
 * options come back as kInvalidArgument instead of the CHECK-aborts
 * the stage-local entry points raise — so serving-adjacent callers
 * (model-build services, tools) can reject bad requests without dying.
 *
 * Auto-tuned compiles consult the process-wide TuneCache (rt/tuner.h),
 * keyed by (layer geometry, kernel ISA, device fingerprint,
 * connectivity rate): the first compileLayer over a configuration pays
 * for the GA, every later compileLayer or whole-model compile() over
 * the same configuration reuses the tuned parameters for free.
 */
#pragma once

#include <memory>

#include "prune/admm.h"
#include "rt/framework.h"
#include "rt/tuner.h"
#include "util/status.h"

namespace patdnn {

/** Result of the pattern-based training stage on a trainable net. */
struct CompressResult
{
    PatternSet pattern_set;
    AdmmResult admm;
};

/**
 * Stage 2 output for a single layer: pruned weights packed to FKW, the
 * LR, and the ready-to-run PatternConv engine.
 */
struct CompiledLayer
{
    std::unique_ptr<FkwLayer> fkw;
    LayerwiseRep lr;
    std::unique_ptr<PatternConv> engine;
};

/**
 * The canonical way to drive the PatDNN pipeline for one device. All
 * methods are thread-safe (the Compiler holds no per-call mutable
 * state; the shared TuneCache locks internally).
 */
class Compiler
{
  public:
    explicit Compiler(DeviceSpec device, CompileOptions opts = {});

    /**
     * Stage 1 on a trainable net: mine the pattern set from the
     * trained weights (options().pattern_count candidates), then run
     * joint kernel-pattern + connectivity ADMM pruning with masked
     * retraining. kInvalidArgument when the options are nonsense or
     * the net has no conv layers to prune.
     */
    Result<CompressResult> compress(Net& net, const SyntheticShapes& data,
                                    const AdmmConfig& cfg = {}) const;

    /**
     * Stage 2 for a single layer: prune a weight copy at
     * options().connectivity_rate, reorder, pack to FKW, build the LR
     * and (optionally) auto-tune on the device. kInvalidArgument on a
     * malformed descriptor, a weight tensor that does not match it, or
     * a pattern set that is empty / of the wrong kernel geometry.
     */
    Result<CompiledLayer> compileLayer(const ConvDesc& desc, Tensor weight,
                                       const PatternSet& set,
                                       bool auto_tune = false) const;

    /**
     * Stages 2-3 for a whole model: validate every layer descriptor,
     * then compile `model` for `kind` on this Compiler's device with
     * its options (pruning + FKW packing for sparse kinds). Per-layer
     * tuned parameters come from the TuneCache when a matching (shape,
     * ISA) entry exists. The result is immutable and ready for
     * saveModel / InferenceSession / ModelRegistry.
     */
    Result<std::shared_ptr<CompiledModel>> compile(
        const Model& model, FrameworkKind kind = FrameworkKind::kPatDnn) const;

    /**
     * Auto-tune the dense packed-GEMM backend (rt/conv_im2col.h) for
     * one layer geometry: GA-search the gemm_kc/gemm_nc cache-blocking
     * axes of tuneSpaceFor(device ISA), measuring the real packed
     * executor on synthetic data. Memoized in the process-wide
     * TuneCache under connectivity rate 0.0 (dense layers have no
     * pruning rate; the distinct key keeps them from inheriting sparse
     * tunings and vice versa) — so first convs and FC heads get the
     * same tuned-once treatment sparse layers already have, and dense
     * compiles via compile() pick the result up through tune_lookup.
     * kInvalidArgument on a malformed descriptor.
     */
    Result<TuneParams> tuneDenseLayer(const ConvDesc& desc) const;

    const DeviceSpec& device() const { return device_; }
    const CompileOptions& options() const { return opts_; }

  private:
    /** Option sanity shared by the stages. */
    Status validateOptions() const;

    DeviceSpec device_;
    CompileOptions opts_;
};

}  // namespace patdnn
