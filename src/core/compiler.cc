#include "core/compiler.h"

#include <cmath>
#include <utility>

#include "util/rng.h"
#include "util/stats.h"

namespace patdnn {

namespace {

/** GA budget of the facade auto-tune path (small: the cache makes the
 * search a one-time cost per (shape, ISA)). Candidate evaluations run
 * in parallel on the process-wide pool — a distinct pool from any
 * device pool the measured engines fork on, so the nested fork-join is
 * legal (ThreadPool serializes concurrent submitters but is not
 * reentrant). The measured times gain cross-candidate contention
 * noise; the GA only ranks candidates, and the search it runs is
 * identical to the serial schedule. */
TunerConfig
facadeTunerConfig()
{
    TunerConfig cfg;
    cfg.population = 8;
    cfg.generations = 2;
    cfg.measure_reps = 1;
    cfg.eval_pool = &ThreadPool::global();
    return cfg;
}

}  // namespace

Compiler::Compiler(DeviceSpec device, CompileOptions opts)
    : device_(std::move(device)), opts_(std::move(opts))
{
}

Status
Compiler::validateOptions() const
{
    if (opts_.pattern_count < 1)
        return Status(ErrorCode::kInvalidArgument,
                      "compile options: pattern_count must be >= 1 (got " +
                          std::to_string(opts_.pattern_count) + ")");
    if (!(opts_.connectivity_rate > 0.0))
        return Status(ErrorCode::kInvalidArgument,
                      "compile options: connectivity_rate must be positive");
    if (!(opts_.first_layer_rate > 0.0))
        return Status(ErrorCode::kInvalidArgument,
                      "compile options: first_layer_rate must be positive");
    if (opts_.calibration.samples < 1)
        return Status(ErrorCode::kInvalidArgument,
                      "compile options: calibration.samples must be >= 1 (got " +
                          std::to_string(opts_.calibration.samples) + ")");
    if (!(opts_.calibration.percentile > 0.0 &&
          opts_.calibration.percentile <= 100.0))
        return Status(ErrorCode::kInvalidArgument,
                      "compile options: calibration.percentile must be in "
                      "(0, 100]");
    return Status::OK();
}

Result<CompressResult>
Compiler::compress(Net& net, const SyntheticShapes& data,
                   const AdmmConfig& cfg) const
{
    PATDNN_RETURN_IF_ERROR(validateOptions());
    std::vector<const Tensor*> weights;
    for (Tensor* w : net.convWeights())
        weights.push_back(w);
    if (weights.empty())
        return Status(ErrorCode::kInvalidArgument,
                      "compress: net has no conv layers to prune");

    CompressResult result;
    result.pattern_set = designPatternSet(weights, opts_.pattern_count);
    AdmmConfig run_cfg = cfg;
    run_cfg.connectivity_rate = opts_.connectivity_rate;
    result.admm = admmPrune(net, data, result.pattern_set, run_cfg);
    return result;
}

Result<CompiledLayer>
Compiler::compileLayer(const ConvDesc& desc, Tensor weight,
                       const PatternSet& set, bool auto_tune) const
{
    PATDNN_RETURN_IF_ERROR(validateOptions());
    PATDNN_RETURN_IF_ERROR(desc.validate());
    if (desc.groups != 1)
        return Status(ErrorCode::kInvalidArgument,
                      "compileLayer: the pattern engine compiles groups == 1 "
                      "convolutions ('" + desc.name + "' has groups = " +
                          std::to_string(desc.groups) + ")");
    Shape expect{desc.cout, desc.cin, desc.kh, desc.kw};
    if (weight.shape() != expect)
        return Status(ErrorCode::kInvalidArgument,
                      "compileLayer: weight shape " + weight.shape().str() +
                          " does not match descriptor '" + desc.name +
                          "' (expected " + expect.str() + ")");
    if (set.size() == 0)
        return Status(ErrorCode::kInvalidArgument,
                      "compileLayer: empty pattern set");
    for (const Pattern& p : set.patterns)
        if (p.kh() != desc.kh || p.kw() != desc.kw)
            return Status(ErrorCode::kInvalidArgument,
                          "compileLayer: pattern geometry " +
                              std::to_string(p.kh()) + "x" +
                              std::to_string(p.kw()) +
                              " does not match the " +
                              std::to_string(desc.kh) + "x" +
                              std::to_string(desc.kw) + " kernels of '" +
                              desc.name + "'");

    CompiledLayer out;
    int64_t kernels = weight.shape().dim(0) * weight.shape().dim(1);
    int64_t alpha = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(static_cast<double>(kernels) /
                                          opts_.connectivity_rate)));
    PatternAssignment asg = projectJoint(weight, set, alpha);
    FkrResult fkr = filterKernelReorder(asg);
    out.fkw = std::make_unique<FkwLayer>(buildFkw(weight, set, asg, fkr));

    out.lr.device = device_.gpu_like ? "GPU" : "CPU";
    out.lr.conv = desc;
    for (int p = 0; p < set.size(); ++p)
        out.lr.pattern_types.push_back(p);

    if (auto_tune) {
        // One GA run per (layer geometry, device, connectivity, ISA)
        // process-wide: repeat compiles of the same configuration skip
        // the search.
        TuneParams cached;
        if (TuneCache::instance().lookup(desc, device_,
                                         opts_.connectivity_rate, &cached)) {
            out.lr.tuning = cached;
        } else {
            Tensor in(Shape{1, desc.cin, desc.h, desc.w});
            Rng rng(17);
            in.fillUniform(rng, -1.0f, 1.0f);
            // Thread-safe for parallel GA evaluation: each call builds
            // its own engine and output buffer; `in`, the FKW and the
            // LR template are shared read-only.
            std::function<double(const TuneParams&)> measure =
                [&](const TuneParams& params) -> double {
                LayerwiseRep lr = out.lr;
                lr.tuning = params;
                PatternConv engine(desc, out.fkw.get(), lr, device_);
                Tensor result_buf = makeConvOutput(desc, 1);
                Timer t;
                engine.run(in, result_buf);
                return t.elapsedMs();
            };
            // Search the ISA-specialized space: unroll/tile choices are
            // in units of the device's kernel vector width.
            TuneResult tuned = tuneLayer(measure, tuneSpaceFor(device_.simd_isa),
                                         facadeTunerConfig());
            out.lr.tuning = tuned.best;
            TuneCache::instance().insert(desc, device_, opts_.connectivity_rate,
                                         tuned.best);
        }
    }
    out.engine =
        std::make_unique<PatternConv>(desc, out.fkw.get(), out.lr, device_);
    return out;
}

Result<std::shared_ptr<CompiledModel>>
Compiler::compile(const Model& model, FrameworkKind kind) const
{
    PATDNN_RETURN_IF_ERROR(validateOptions());
    if (model.layers().empty())
        return Status(ErrorCode::kInvalidArgument,
                      "compile: model '" + model.name() + "' has no layers");
    for (const Layer& layer : model.layers()) {
        if (layer.kind != OpKind::kConv)
            continue;
        Status st = layer.conv.validate();
        if (!st.ok())
            return Status(ErrorCode::kInvalidArgument,
                          "compile: model '" + model.name() + "': " +
                              st.message());
    }

    // Whole-model compiles reuse per-layer tunings the GA already paid
    // for (compileLayer / tuneDenseLayer populate the cache; misses
    // keep the options' default tuning). Sparse kinds key on the
    // pruning rate the GA measured; dense kinds key on the 0.0 rate
    // tuneDenseLayer writes.
    bool sparse_kind =
        kind == FrameworkKind::kPatDnn || kind == FrameworkKind::kCsrSparse;
    double lookup_rate = sparse_kind ? opts_.connectivity_rate : 0.0;
    CompileOptions opts = opts_;
    opts.tune_lookup = [device = device_, rate = lookup_rate](
                           const ConvDesc& desc, TuneParams* params) {
        return TuneCache::instance().lookup(desc, device, rate, params);
    };
    return std::make_shared<CompiledModel>(model, kind, device_, opts);
}

Result<TuneParams>
Compiler::tuneDenseLayer(const ConvDesc& desc) const
{
    PATDNN_RETURN_IF_ERROR(desc.validate());
    TuneParams cached;
    if (TuneCache::instance().lookup(desc, device_, /*connectivity_rate=*/0.0,
                                     &cached))
        return cached;

    Rng rng(23);
    Tensor weight(Shape{desc.cout, desc.cinPerGroup(), desc.kh, desc.kw});
    weight.fillHe(rng, desc.cinPerGroup() * desc.kh * desc.kw);
    Tensor in(Shape{1, desc.cin, desc.h, desc.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    // Thread-safe: each candidate packs its own engine (the real
    // compile-time cost of a blocking choice) and owns its output.
    std::function<double(const TuneParams&)> measure =
        [&](const TuneParams& params) -> double {
        Im2colConv engine(desc, &weight, device_, params);
        Tensor result_buf = makeConvOutput(desc, 1);
        Timer t;
        engine.run(in, result_buf);
        return t.elapsedMs();
    };
    TuneResult tuned = tuneLayer(measure, tuneSpaceFor(device_.simd_isa),
                                 facadeTunerConfig());
    TuneCache::instance().insert(desc, device_, /*connectivity_rate=*/0.0,
                                 tuned.best);
    return tuned.best;
}

}  // namespace patdnn
