#include "core/patdnn.h"

#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace patdnn {

CompressResult
compress(Net& net, const SyntheticShapes& data, int pattern_count,
         double connectivity_rate, const AdmmConfig& cfg)
{
    CompressResult result;
    std::vector<const Tensor*> weights;
    for (Tensor* w : net.convWeights())
        weights.push_back(w);
    result.pattern_set = designPatternSet(weights, pattern_count);
    AdmmConfig run_cfg = cfg;
    run_cfg.connectivity_rate = connectivity_rate;
    result.admm = admmPrune(net, data, result.pattern_set, run_cfg);
    return result;
}

CompiledLayer
compileLayer(const ConvDesc& desc, Tensor weight, const PatternSet& set,
             double connectivity_rate, const DeviceSpec& device, bool auto_tune)
{
    CompiledLayer out;
    int64_t kernels = weight.shape().dim(0) * weight.shape().dim(1);
    int64_t alpha = std::max<int64_t>(
        1, static_cast<int64_t>(
               std::ceil(static_cast<double>(kernels) / connectivity_rate)));
    PatternAssignment asg = projectJoint(weight, set, alpha);
    FkrResult fkr = filterKernelReorder(asg);
    out.fkw = std::make_unique<FkwLayer>(buildFkw(weight, set, asg, fkr));

    out.lr.device = device.gpu_like ? "GPU" : "CPU";
    out.lr.conv = desc;
    for (int p = 0; p < set.size(); ++p)
        out.lr.pattern_types.push_back(p);

    if (auto_tune) {
        Tensor in(Shape{1, desc.cin, desc.h, desc.w});
        Rng rng(17);
        in.fillUniform(rng, -1.0f, 1.0f);
        Tensor result_buf = makeConvOutput(desc, 1);
        std::function<double(const TuneParams&)> measure =
            [&](const TuneParams& params) -> double {
            LayerwiseRep lr = out.lr;
            lr.tuning = params;
            PatternConv engine(desc, out.fkw.get(), lr, device);
            Timer t;
            engine.run(in, result_buf);
            return t.elapsedMs();
        };
        TunerConfig tuner_cfg;
        tuner_cfg.population = 8;
        tuner_cfg.generations = 2;
        tuner_cfg.measure_reps = 1;
        // Search the ISA-specialized space: unroll/tile choices are in
        // units of the device's kernel vector width.
        TuneResult tuned =
            tuneLayer(measure, tuneSpaceFor(device.simd_isa), tuner_cfg);
        out.lr.tuning = tuned.best;
    }
    out.engine = std::make_unique<PatternConv>(desc, out.fkw.get(), out.lr, device);
    return out;
}

bool
saveModel(const CompiledModel& model, const std::string& path, std::string* error)
{
    return saveModelArtifact(model, path, error);
}

std::shared_ptr<CompiledModel>
loadModel(const std::string& path, const DeviceSpec& device, std::string* error)
{
    return loadModelArtifact(path, device, error);
}

std::shared_ptr<CompiledModel>
loadModel(const std::string& path, const DeviceSpec& device,
          const ArtifactLoadOptions& opts, std::string* error, ArtifactInfo* info)
{
    return loadModelArtifact(path, device, opts, error, info);
}

std::unique_ptr<InferenceServer>
serve(std::shared_ptr<const CompiledModel> model, const ServerOptions& opts)
{
    return std::make_unique<InferenceServer>(std::move(model), opts);
}

std::unique_ptr<ModelRegistry>
serveRegistry(const RegistryOptions& opts)
{
    return std::make_unique<ModelRegistry>(opts);
}

}  // namespace patdnn
