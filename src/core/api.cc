#include "core/patdnn.h"

#include "util/logging.h"

namespace patdnn {

CompressResult
compress(Net& net, const SyntheticShapes& data, int pattern_count,
         double connectivity_rate, const AdmmConfig& cfg)
{
    CompileOptions opts;
    opts.pattern_count = pattern_count;
    opts.connectivity_rate = connectivity_rate;
    Result<CompressResult> result =
        Compiler(DeviceSpec{}, opts).compress(net, data, cfg);
    PATDNN_CHECK(result.ok(), result.status().toString());
    return std::move(result).value();
}

CompiledLayer
compileLayer(const ConvDesc& desc, Tensor weight, const PatternSet& set,
             double connectivity_rate, const DeviceSpec& device, bool auto_tune)
{
    CompileOptions opts;
    opts.connectivity_rate = connectivity_rate;
    Result<CompiledLayer> result =
        Compiler(device, opts).compileLayer(desc, std::move(weight), set,
                                            auto_tune);
    PATDNN_CHECK(result.ok(), result.status().toString());
    return std::move(result).value();
}

Status
saveModel(const CompiledModel& model, const std::string& path)
{
    return saveModelArtifact(model, path);
}

Result<std::shared_ptr<CompiledModel>>
loadModel(const std::string& path, const DeviceSpec& device,
          const ArtifactLoadOptions& opts, ArtifactInfo* info)
{
    return loadModelArtifact(path, device, opts, info);
}

std::unique_ptr<InferenceServer>
serve(std::shared_ptr<const CompiledModel> model, const ServerOptions& opts)
{
    return std::make_unique<InferenceServer>(std::move(model), opts);
}

std::unique_ptr<ModelRegistry>
serveRegistry(const RegistryOptions& opts)
{
    return std::make_unique<ModelRegistry>(opts);
}

}  // namespace patdnn
