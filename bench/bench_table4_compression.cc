/**
 * @file
 * Table 4 reproduction: accuracy vs CONV compression under joint
 * 8-pattern + connectivity pruning compared to non-structured
 * baselines (one-shot magnitude pruning standing in for the iterative
 * heuristics, and ADMM-regularized non-structured pruning standing in
 * for ADMM-NN). The claim to check: our joint scheme reaches the
 * highest compression band with no (or the smallest) accuracy drop.
 */
#include "bench_common.h"

using namespace patdnn;

int
main()
{
    bench::banner("Table 4", "accuracy + CONV compression: joint vs non-structured");
    SyntheticShapes data(4, 12, 1, 224, 96, 41);
    Table t({"Method", "Accuracy (dense)", "Accuracy (pruned)",
             "CONV compression"});

    struct Entry { const char* label; PruneScheme scheme; double target; };
    const Entry entries[] = {
        {"Magnitude (Deep-Compression-like)", PruneScheme::kNonStructured, 6.5},
        {"ADMM non-structured (ADMM-NN-like)", PruneScheme::kNonStructuredAdmm, 8.0},
        {"Ours: 8-pattern + 3.6x connectivity", PruneScheme::kPatternConnectivity,
         8.0},
    };
    for (const auto& e : entries) {
        Net net = buildVggStyleNet(4, 12, 1, 8, 61);
        TrainConfig tc;
        tc.epochs = 5;
        tc.batch_size = 16;
        tc.lr = 2e-3f;
        trainNet(net, data, tc);
        PruneOptions opts;
        opts.target_compression = e.target;
        opts.pattern_count = 8;
        opts.connectivity_rate = 3.6;
        opts.retrain_epochs = 4;
        opts.admm.admm_iterations = 2;
        opts.admm.epochs_per_iteration = 2;
        opts.admm.retrain_epochs = 4;
        PruneReport r = pruneWithScheme(net, data, e.scheme, opts);
        t.addRow({e.label, Table::num(100 * r.dense_accuracy, 1),
                  Table::num(100 * r.pruned_accuracy, 1),
                  Table::num(r.conv_compression, 1) + "x"});
    }
    t.print();
    std::printf("\nPaper (VGG-16/ImageNet Top-5): Deep compression 89.1 @ 3.5x, "
                "ADMM-NN 88.9 @ 8.0x, ours 91.6 @ 8.0x (no drop).\n");
    return 0;
}
