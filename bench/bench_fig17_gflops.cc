/**
 * @file
 * Fig. 17 reproduction.
 *
 * (a) Dense sanity check without Winograd: our optimized dense
 *     (im2col + register-blocked GEMM) against the MNN-like engine
 *     with Winograd disabled, whole VGG conv stack on CPU and GPU-like.
 * (b) Per-layer GFLOPS of the pattern engine (counting only the MACs
 *     it actually executes) vs the dense baseline (no Winograd) —
 *     the paper's claim: comparable on CPU, better on GPU.
 */
#include "bench_common.h"
#include "util/stats.h"

using namespace patdnn;

namespace {

/** Dense im2col time (the no-Winograd dense baseline). */
double
denseNoWinoMs(const ConvDesc& d, const DeviceSpec& dev, int row_block)
{
    Rng rng(3);
    Tensor w(Shape{d.cout, d.cin, d.kh, d.kw});
    w.fillHe(rng, d.cin * d.kh * d.kw);
    Tensor in(Shape{1, d.cin, d.h, d.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor out = makeConvOutput(d, 1);
    Im2colConv engine(d, &w, dev);
    (void)row_block;
    return medianTimeMs([&] { engine.run(in, out); }, 1, bench::reps());
}

}  // namespace

int
main()
{
    bench::banner("Fig. 17", "GFLOPS: PatDNN pattern vs optimized dense");
    auto layers = vggUniqueLayers(bench::spatialScale());

    // --- (a) whole-stack dense w/o Winograd ---
    std::printf("--- (a) dense VGG conv stack, Winograd off (ms) ---\n");
    {
        Table t({"Device", "MNN-like (no Wino)", "PatDNN-dense (no Wino)"});
        for (bool gpu : {false, true}) {
            DeviceSpec dev = gpu ? makeGpuDevice() : makeCpuDevice(8);
            double mnn = 0.0, ours = 0.0;
            for (const auto& d : layers) {
                // Same GEMM kernel: both engines collapse to im2col when
                // Winograd is off; the residual difference is scheduling.
                mnn += denseNoWinoMs(d, dev, 1);
                ours += denseNoWinoMs(d, dev, 4);
            }
            t.addRow({gpu ? "GPU-like" : "CPU", Table::num(mnn, 1),
                      Table::num(ours, 1)});
        }
        t.print();
        std::printf("(both facades share one GEMM here, so parity — not the "
                    "paper's 1.1-1.6x dense edge — is expected; see "
                    "EXPERIMENTS.md)\n\n");
    }

    // --- (b) per-layer GFLOPS, pattern vs dense ---
    std::printf("--- (b) per-layer GFLOPS (effective MACs / time) ---\n");
    for (bool gpu : {false, true}) {
        DeviceSpec dev = gpu ? makeGpuDevice() : makeCpuDevice(8);
        Table t({"Layer", "Dense (no Wino)", "Pattern", "Pattern/Dense"});
        for (const auto& d : layers) {
            CompiledConvLayer dense(d, FrameworkKind::kTvmLike, dev);
            CompiledConvLayer pattern(d, FrameworkKind::kPatDnn, dev);
            double dms = dense.timeMs(1, bench::reps());
            double pms = pattern.timeMs(1, bench::reps());
            double dg = dense.gflops(dms);
            double pg = pattern.gflops(pms);
            t.addRow({d.name, Table::num(dg, 2), Table::num(pg, 2),
                      Table::num(pg / dg, 2) + "x"});
        }
        std::printf("[%s]\n", gpu ? "GPU-like" : "CPU");
        t.print();
        std::printf("\n");
    }
    std::printf("Paper shape to check: pattern GFLOPS comparable to dense on CPU "
                "and ahead on GPU (memory-pressure relief from compression); and "
                "note the pattern engine needs ~3.6x fewer MACs for the same "
                "layer, so equal GFLOPS means ~3.6x less wall-clock.\n");
    return 0;
}
