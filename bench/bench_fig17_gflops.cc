/**
 * @file
 * Fig. 17 reproduction.
 *
 * (a) Dense backend check without Winograd: the packed tiled GEMM
 *     (rt/gemm_packed.h, the run path) vs the register-blocked naive
 *     GEMM it replaced, whole VGG conv stack on CPU and GPU-like —
 *     the packed backend's >= 2x acceptance gate at stack level.
 * (b) Per-layer GFLOPS of the pattern engine (counting only the MACs
 *     it actually executes) vs the packed dense baseline (no
 *     Winograd) — the paper's claim: comparable on CPU, better on
 *     GPU, now measured against a competitive dense GEMM.
 */
#include "bench_common.h"
#include "util/stats.h"

using namespace patdnn;

namespace {

enum class DenseMode { kNaive, kPackedF32, kPackedI8 };

/** Dense im2col time (the no-Winograd dense baseline): the packed
 * tiled GEMM run path, the retained pre-packing naive GEMM, or the
 * int8 quantized GEMM (activation scale taken from the input absmax,
 * as the calibrator would on this one-tensor "batch"). */
double
denseNoWinoMs(const ConvDesc& d, const DeviceSpec& dev, DenseMode mode)
{
    Rng rng(3);
    Tensor w(Shape{d.cout, d.cin, d.kh, d.kw});
    w.fillHe(rng, d.cin * d.kh * d.kw);
    Tensor in(Shape{1, d.cin, d.h, d.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor out = makeConvOutput(d, 1);
    if (mode == DenseMode::kPackedI8) {
        ActivationCalibrator cal(CalibrationMethod::kAbsMax);
        cal.observe(in);
        Im2colConv engine(d, &w, dev, TuneParams{}, cal.scale());
        return medianTimeMs([&] { engine.run(in, out); }, 1, bench::reps());
    }
    Im2colConv engine(d, &w, dev);
    if (mode == DenseMode::kPackedF32)
        return medianTimeMs([&] { engine.run(in, out); }, 1, bench::reps());
    return medianTimeMs([&] { engine.runNaive(in, out); }, 1, bench::reps());
}

}  // namespace

int
main()
{
    bench::banner("Fig. 17", "GFLOPS: PatDNN pattern vs optimized dense");
    auto layers = vggUniqueLayers(bench::spatialScale());

    // --- (a) whole-stack dense w/o Winograd: packed vs naive GEMM ---
    std::printf("--- (a) dense VGG conv stack, Winograd off (ms) ---\n");
    {
        Table t({"Device", "naive GEMM", "packed GEMM", "packed i8",
                 "naive/packed", "f32/i8"});
        for (bool gpu : {false, true}) {
            DeviceSpec dev = gpu ? makeGpuDevice() : makeCpuDevice(8);
            double naive = 0.0, packed = 0.0, packed_i8 = 0.0;
            for (const auto& d : layers) {
                naive += denseNoWinoMs(d, dev, DenseMode::kNaive);
                packed += denseNoWinoMs(d, dev, DenseMode::kPackedF32);
                packed_i8 += denseNoWinoMs(d, dev, DenseMode::kPackedI8);
            }
            t.addRow({gpu ? "GPU-like" : "CPU", Table::num(naive, 1),
                      Table::num(packed, 1), Table::num(packed_i8, 1),
                      Table::num(naive / packed, 2) + "x",
                      Table::num(packed / packed_i8, 2) + "x"});
        }
        t.print();
        std::printf("(the packed tile-kernel GEMM replaced the naive one on "
                    "every dense run path; the naive column is the retained "
                    "comparison point — see docs/KERNELS.md. packed i8 is the "
                    "quantized path: same im2col, i8 panels + "
                    "SimdOps::gemm_tile_i8, f32 requant epilogue)\n\n");
    }

    // --- (b) per-layer GFLOPS, pattern vs dense ---
    std::printf("--- (b) per-layer GFLOPS (effective MACs / time) ---\n");
    for (bool gpu : {false, true}) {
        DeviceSpec dev = gpu ? makeGpuDevice() : makeCpuDevice(8);
        Table t({"Layer", "Dense (no Wino)", "Pattern", "Pattern/Dense"});
        for (const auto& d : layers) {
            CompiledConvLayer dense(d, FrameworkKind::kTvmLike, dev);
            CompiledConvLayer pattern(d, FrameworkKind::kPatDnn, dev);
            double dms = dense.timeMs(1, bench::reps());
            double pms = pattern.timeMs(1, bench::reps());
            double dg = dense.gflops(dms);
            double pg = pattern.gflops(pms);
            t.addRow({d.name, Table::num(dg, 2), Table::num(pg, 2),
                      Table::num(pg / dg, 2) + "x"});
        }
        std::printf("[%s]\n", gpu ? "GPU-like" : "CPU");
        t.print();
        std::printf("\n");
    }
    std::printf("Paper shape to check: pattern GFLOPS comparable to dense on CPU "
                "and ahead on GPU (memory-pressure relief from compression); and "
                "note the pattern engine needs ~3.6x fewer MACs for the same "
                "layer, so equal GFLOPS means ~3.6x less wall-clock.\n");
    return 0;
}
