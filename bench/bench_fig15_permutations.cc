/**
 * @file
 * Fig. 15 reproduction: achieved GFLOPS of each unique VGG CONV layer
 * under the four loop configurations the auto-tuner chooses between —
 * {CoCiHW, CoHWCi} x {no-block, block}. Different layers prefer
 * different configurations, which is why per-layer tuning pays.
 */
#include "bench_common.h"

using namespace patdnn;

namespace {

double
gflopsFor(const ConvDesc& d, const DeviceSpec& dev, LoopPermutation perm,
          bool blocked)
{
    CompileOptions opts;
    opts.default_tuning.permute = perm;
    opts.default_tuning.blocked = blocked;
    opts.default_tuning.tile_oh = 8;
    CompiledConvLayer layer(d, FrameworkKind::kPatDnn, dev, opts);
    double ms = layer.timeMs(1, bench::reps());
    return layer.gflops(ms);
}

}  // namespace

int
main()
{
    bench::banner("Fig. 15", "GFLOPS across loop permutations and blocking");
    DeviceSpec dev = makeCpuDevice(8);
    Table t({"Layer", "CoCiHW", "CoHWCi", "CoCiHW-Block", "CoHWCi-Block"});
    for (const auto& d : vggUniqueLayers(bench::spatialScale())) {
        t.addRow({d.name,
                  Table::num(gflopsFor(d, dev, LoopPermutation::kCoCiHW, false), 2),
                  Table::num(gflopsFor(d, dev, LoopPermutation::kCoHWCi, false), 2),
                  Table::num(gflopsFor(d, dev, LoopPermutation::kCoCiHW, true), 2),
                  Table::num(gflopsFor(d, dev, LoopPermutation::kCoHWCi, true), 2)});
    }
    t.print();
    std::printf("\nPaper shape to check: no single configuration wins every layer; "
                "blocking helps the large early layers most.\n");
    return 0;
}
