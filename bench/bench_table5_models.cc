/**
 * @file
 * Table 5 reproduction: characteristics of the trained DNNs — layer
 * counts, conv counts, model size (MB), pattern-set size. Accuracy
 * columns come from the training-stage experiments (bench_table3/4);
 * here we annotate with the paper's reported values for reference.
 */
#include "bench_common.h"

using namespace patdnn;

int
main()
{
    bench::banner("Table 5", "DNN characteristics (zoo geometry)");
    Table t({"Name", "Network", "Dataset", "Layers", "Conv", "Size(MB)", "Patterns"});
    struct Row { const char* short_name; Dataset ds; };
    const Row rows[] = {
        {"VGG", Dataset::kImageNet}, {"VGG", Dataset::kCifar10},
        {"RNT", Dataset::kImageNet}, {"RNT", Dataset::kCifar10},
        {"MBNT", Dataset::kImageNet}, {"MBNT", Dataset::kCifar10},
    };
    for (const auto& r : rows) {
        Model m = buildByShortName(r.short_name, r.ds);
        int64_t weight_layers =
            mainPathConvCount(m) + m.countKind(OpKind::kFullyConnected);
        t.addRow({r.short_name, m.name(), m.dataset(),
                  std::to_string(weight_layers),
                  std::to_string(mainPathConvCount(m)),
                  Table::num(m.sizeMB(), 1), "8"});
    }
    t.print();
    std::printf("\nPaper reference sizes: VGG/ImageNet 553.5 (serialized; raw fp32 "
                "~528), RNT/ImageNet 102.5, MBNT/ImageNet 14.2 MB.\n");
    return 0;
}
