/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark harnesses.
 *
 * Spatial scaling: the paper runs full 224x224 ImageNet layers on a
 * Snapdragon 855. On a shared host, every bench scales the spatial
 * dimensions down by PATDNN_BENCH_SCALE (default 4, i.e. 1/16 of the
 * MACs) so the whole suite completes in minutes. Set
 * PATDNN_BENCH_SCALE=1 to run the paper's exact shapes. Relative
 * orderings — the reproduction target — are unaffected by the scale.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/patdnn.h"
#include "util/table.h"

namespace patdnn::bench {

/** Spatial divisor from PATDNN_BENCH_SCALE (default 4). */
inline int64_t
spatialScale()
{
    const char* env = std::getenv("PATDNN_BENCH_SCALE");
    if (env == nullptr)
        return 4;
    int64_t v = std::atoll(env);
    return v >= 1 ? v : 1;
}

/** Timed repetitions from PATDNN_BENCH_REPS (default 3). */
inline int
reps()
{
    const char* env = std::getenv("PATDNN_BENCH_REPS");
    if (env == nullptr)
        return 3;
    int v = std::atoi(env);
    return v >= 1 ? v : 1;
}

/** Print a bench banner with the experiment id and scaling info. */
inline void
banner(const std::string& experiment, const std::string& what)
{
    std::printf("\n=== %s — %s ===\n", experiment.c_str(), what.c_str());
    std::printf("(spatial scale 1/%lld; set PATDNN_BENCH_SCALE=1 for paper-exact "
                "shapes)\n\n",
                static_cast<long long>(spatialScale()));
}

/** Conv descriptors of a zoo model with spatial dims scaled down. */
inline std::vector<ConvDesc>
scaledConvDescs(const Model& m, int64_t divisor)
{
    std::vector<ConvDesc> out;
    for (const auto& l : m.layers()) {
        if (l.kind != OpKind::kConv)
            continue;
        ConvDesc d = l.conv;
        d.h = std::max<int64_t>(4, d.h / divisor);
        d.w = std::max<int64_t>(4, d.w / divisor);
        // Keep geometry valid for strided layers.
        if (d.outH() < 1 || d.outW() < 1) {
            d.h = d.kh * d.stride + 2;
            d.w = d.kw * d.stride + 2;
        }
        out.push_back(d);
    }
    return out;
}

/** Sum of per-layer conv times (ms) for a framework on a device. */
inline double
convStackTimeMs(const std::vector<ConvDesc>& descs, FrameworkKind kind,
                const DeviceSpec& dev, const CompileOptions& opts = {})
{
    double total = 0.0;
    for (const auto& d : descs) {
        if (d.groups != 1 && (kind == FrameworkKind::kCsrSparse ||
                              kind == FrameworkKind::kPatDnn)) {
            // Depthwise layers stay dense in the sparse engines (the
            // paper prunes CONV layers with full connectivity).
            CompiledConvLayer layer(d, FrameworkKind::kPatDnnDense, dev, opts);
            total += layer.timeMs(1, reps());
            continue;
        }
        if (d.groups != 1) {
            CompiledConvLayer layer(d, FrameworkKind::kTfliteLike, dev, opts);
            total += layer.timeMs(1, reps());
            continue;
        }
        CompiledConvLayer layer(d, kind, dev, opts);
        total += layer.timeMs(1, reps());
    }
    return total;
}

}  // namespace patdnn::bench
