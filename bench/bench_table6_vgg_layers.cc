/**
 * @file
 * Table 6 reproduction: the nine unique VGG-16 CONV layer filter
 * shapes with their short names, plus geometry/FLOP metadata the other
 * benches key off.
 */
#include "bench_common.h"

using namespace patdnn;

int
main()
{
    bench::banner("Table 6", "VGG unique CONV layers' filter shapes");
    Table t({"Name", "Filter shape", "Input HxW", "Dense GFLOPs", "Repeats in VGG-16"});
    // L6 appears twice, L8 twice and L9 three times in the full net.
    const int repeats[9] = {1, 1, 1, 1, 1, 2, 1, 2, 3};
    auto layers = vggUniqueLayers(1);
    for (size_t i = 0; i < layers.size(); ++i) {
        const ConvDesc& d = layers[i];
        t.addRow({d.name, d.filterShapeStr(),
                  std::to_string(d.h) + "x" + std::to_string(d.w),
                  Table::num(static_cast<double>(d.flops()) / 1e9, 2),
                  std::to_string(repeats[i])});
    }
    t.print();
    return 0;
}
