/**
 * @file
 * Table 3 reproduction: accuracy under kernel-pattern pruning only,
 * as the candidate set grows (original dense, 6, 8, 12 patterns).
 * The paper's observation — accuracy is flat-to-improving once the
 * set has 6-8 patterns — is checked on the VGG-style and
 * ResNet-style trainable nets over the SyntheticShapes stand-in.
 */
#include "bench_common.h"

using namespace patdnn;

int
main()
{
    bench::banner("Table 3", "accuracy vs pattern-set size (pattern pruning only)");
    SyntheticShapes data(4, 12, 1, 224, 96, 31);
    Table t({"Network", "Original", "6-pattern", "8-pattern", "12-pattern"});
    struct NetCfg { const char* label; bool res_style; };
    for (NetCfg cfg : {NetCfg{"VGG-style", false}, NetCfg{"ResNet-style", true}}) {
        std::vector<std::string> row = {cfg.label};
        double dense_acc = 0.0;
        for (int patterns : {0, 6, 8, 12}) {
            Net net = cfg.res_style ? buildResStyleNet(4, 12, 1, 8, 51)
                                    : buildVggStyleNet(4, 12, 1, 8, 52);
            TrainConfig tc;
            tc.epochs = 5;
            tc.batch_size = 16;
            tc.lr = 2e-3f;
            TrainResult base = trainNet(net, data, tc);
            if (patterns == 0) {
                dense_acc = base.test_accuracy;
                row.push_back(Table::num(100 * dense_acc, 1));
                continue;
            }
            PruneOptions opts;
            opts.pattern_count = patterns;
            opts.retrain_epochs = 3;
            opts.admm.admm_iterations = 2;
            opts.admm.epochs_per_iteration = 2;
            opts.admm.retrain_epochs = 3;
            PruneReport r = pruneWithScheme(net, data, PruneScheme::kPattern, opts);
            row.push_back(Table::num(100 * r.pruned_accuracy, 1));
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\nPaper (Top-5, ImageNet): VGG 91.7 -> 92.1/92.3/92.4; ResNet-50 "
                "92.7 -> 92.7/92.8/93.0 — flat-to-improving with >= 6 patterns.\n");
    return 0;
}
