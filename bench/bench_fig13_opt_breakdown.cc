/**
 * @file
 * Fig. 13 reproduction: speedup of each optimization level over the
 * un-optimized pattern execution on every unique VGG CONV layer, for
 * the CPU and the GPU-like device:
 *
 *   No-opt          — loose format, per-kernel dispatch, no LRE,
 *                     default untuned parameters;
 *   +Reorder        — FKR (tight FKW, branch-free segments, balance);
 *   +Reorder+LRE    — adds register-level load redundancy elimination;
 *   +Reorder+LRE+Tune — adds GA-tuned tile/unroll/permutation.
 */
#include "bench_common.h"

using namespace patdnn;

namespace {

double
timeConfig(const ConvDesc& d, const DeviceSpec& dev, bool reorder, bool lre,
           bool tune)
{
    CompileOptions opts;
    opts.opts.reorder = reorder;
    opts.opts.lre = lre;
    opts.opts.tuned = tune;
    if (!tune) {
        // Deliberately bland defaults: whole-plane, no spatial blocking.
        // Filter-level LRE (unroll_oc bundling) is part of the +LRE
        // level per Fig. 11; everything else stays untuned.
        opts.default_tuning.blocked = false;
        opts.default_tuning.permute = LoopPermutation::kCoCiHW;
        opts.default_tuning.unroll_oc = lre ? 4 : 1;
        opts.default_tuning.filters_per_task = 64;
    }
    CompiledConvLayer layer(d, FrameworkKind::kPatDnn, dev, opts);
    if (!tune)
        return layer.timeMs(1, bench::reps());
    // GA auto-tuning (Section 5.5) on top of reorder+LRE.
    TunerConfig tc;
    tc.population = 8;
    tc.generations = 2;
    tc.measure_reps = 1;
    std::function<double(const TuneParams&)> measure =
        [&](const TuneParams& p) { return layer.timeWithParams(p, 1); };
    TuneResult r = tuneLayer(measure, TuneSpace{}, tc);
    return layer.timeWithParams(r.best, bench::reps());
}

void
runDevice(const char* label, const DeviceSpec& dev)
{
    std::printf("--- %s ---\n", label);
    Table t({"Layer", "No-opt (ms)", "+Reorder", "+Reorder+LRE",
             "+Reorder+LRE+Tune"});
    auto layers = vggUniqueLayers(bench::spatialScale());
    for (const auto& d : layers) {
        double base = timeConfig(d, dev, false, false, false);
        double reorder = timeConfig(d, dev, true, false, false);
        double lre = timeConfig(d, dev, true, true, false);
        double tuned = timeConfig(d, dev, true, true, true);
        auto speedup = [&](double ms) { return Table::num(base / ms, 2) + "x"; };
        t.addRow({d.name, Table::num(base, 2), speedup(reorder), speedup(lre),
                  speedup(tuned)});
    }
    t.print();
    std::printf("\n");
}

}  // namespace

int
main()
{
    bench::banner("Fig. 13", "speedup of opt levels over No-opt per VGG layer");
    runDevice("CPU", makeCpuDevice(8));
    runDevice("GPU-like", makeGpuDevice());
    std::printf("Paper: reorder 1.6-3.0x (CPU) / 2.7-6.1x (GPU), LRE adds 1.6-2.8x "
                "/ 1.5-3.3x, tuning adds 1.2-1.9x / 1.4-3.8x.\n");
    return 0;
}
