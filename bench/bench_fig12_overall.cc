/**
 * @file
 * Fig. 12 reproduction: overall CONV-stack execution time of PatDNN vs
 * the three dense baselines (TFLite-like, TVM-like, MNN-like) plus the
 * CSR sparse baseline, for {VGG, RNT, MBNT} x {ImageNet, CIFAR-10} x
 * {CPU, GPU-like}. The paper reports average inference time for the
 * CONV layers, which dominate (>90-95%) end-to-end time.
 */
#include "bench_common.h"

using namespace patdnn;

namespace {

void
runDevice(const char* label, const DeviceSpec& dev)
{
    const FrameworkKind kinds[] = {
        FrameworkKind::kTfliteLike, FrameworkKind::kTvmLike,
        FrameworkKind::kMnnLike, FrameworkKind::kCsrSparse, FrameworkKind::kPatDnn};
    for (Dataset ds : {Dataset::kImageNet, Dataset::kCifar10}) {
        std::printf("--- %s / %s (CONV-stack ms, lower is better) ---\n", label,
                    datasetName(ds).c_str());
        Table t({"Model", "TFLite-like", "TVM-like", "MNN-like", "CSR-sparse",
                 "PatDNN", "best dense / PatDNN"});
        for (const char* name : {"VGG", "RNT", "MBNT"}) {
            Model m = buildByShortName(name, ds);
            int64_t divisor = ds == Dataset::kImageNet ? bench::spatialScale() : 1;
            auto descs = bench::scaledConvDescs(m, divisor);
            std::vector<std::string> row = {name};
            double best_dense = 1e30, patdnn = 0.0;
            for (FrameworkKind kind : kinds) {
                double ms = bench::convStackTimeMs(descs, kind, dev);
                row.push_back(Table::num(ms, 1));
                if (kind == FrameworkKind::kPatDnn)
                    patdnn = ms;
                else if (kind != FrameworkKind::kCsrSparse)
                    best_dense = std::min(best_dense, ms);
            }
            row.push_back(Table::num(best_dense / patdnn, 2) + "x");
            t.addRow(row);
        }
        t.print();
        std::printf("\n");
    }
}

}  // namespace

int
main()
{
    bench::banner("Fig. 12", "overall performance vs baseline frameworks");
    runDevice("CPU", makeCpuDevice(8));
    runDevice("GPU-like", makeGpuDevice());
    std::printf(
        "Paper shape to check: PatDNN fastest everywhere; CSR-sparse roughly at\n"
        "dense speed despite ~8x fewer FLOPs; TFLite-like slowest of the dense\n"
        "engines. Paper speedups: 12.3-44.5x over TFLite, 2.4-5.1x over TVM,\n"
        "1.9-7.1x over MNN on CPU.\n");
    return 0;
}
