/**
 * @file
 * Serving-tier load generator: drives a 2-replica ShardRouter over one
 * compiled model and reports the three numbers a capacity plan needs.
 *
 *   1. Closed loop — N clients submit back-to-back (each waits for its
 *      response before the next request): peak throughput and the
 *      latency quad (p50/p99/p999) as concurrency grows, for both
 *      routing policies.
 *   2. Open loop — requests arrive on a fixed timer regardless of
 *      completions (the arrival process real traffic has): achieved
 *      QPS, shed fraction and tail latency at offered loads below,
 *      near and above the closed-loop capacity.
 *   3. SLO search — binary search over offered load for the max
 *      sustainable QPS whose p99 stays under an SLO with <= 1% shed.
 *
 * Latency is the server-side submit-to-completion histogram
 * (ServerStats.latency_hist), merged across replicas — the same
 * constant-memory histogram the obs layer exports, so p999 is
 * well-defined even for short trials. Trial lengths scale with
 * PATDNN_BENCH_REPS (default 3).
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace patdnn::bench {
namespace {

constexpr const char* kModel = "tiny";

Model
tinyModel()
{
    Model m("tiny-load", "bench");
    Layer conv;
    conv.kind = OpKind::kConv;
    conv.name = "c1";
    conv.conv = ConvDesc{"c1", 3, 16, 3, 3, 16, 16, 1, 1, 1, 1};
    m.addLayer(std::move(conv));
    Layer relu;
    relu.kind = OpKind::kReLU;
    relu.name = "c1_relu";
    m.addLayer(std::move(relu));
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    Layer fc;
    fc.kind = OpKind::kFullyConnected;
    fc.name = "fc";
    fc.in_features = 16 * 16 * 16;
    fc.out_features = 8;
    m.addLayer(std::move(fc));
    m.randomizeWeights(7);
    return m;
}

/** A router over `replicas` local InferenceServers, with the server
 * handles kept so trials can merge the per-replica latency
 * histograms. */
struct Cluster
{
    std::unique_ptr<ShardRouter> router;
    std::vector<std::shared_ptr<InferenceServer>> servers;

    Cluster() = default;
    Cluster(Cluster&&) = default;
    Cluster& operator=(Cluster&&) = default;

    ~Cluster()
    {
        if (router != nullptr)
            router->shutdownAll();
    }
};

Cluster
makeCluster(std::shared_ptr<const CompiledModel> model, int replicas,
            RoutePolicy policy)
{
    Cluster c;
    RouterOptions ropts;
    ropts.policy = policy;
    c.router = std::make_unique<ShardRouter>(ropts);
    for (int i = 0; i < replicas; ++i) {
        ServerOptions sopts;
        sopts.workers = 1;
        sopts.max_batch = 8;
        sopts.max_queue = 32;
        auto server = std::make_shared<InferenceServer>(model, sopts);
        c.servers.push_back(server);
        c.router->addReplica(kModel, std::make_shared<LocalReplica>(server));
    }
    return c;
}

/** One trial's outcome: throughput, shed fraction, latency quad. */
struct TrialResult
{
    int64_t completed = 0;
    int64_t shed = 0;
    double wall_ms = 0.0;
    Percentiles lat;

    double qps() const
    {
        return wall_ms > 0.0 ? 1e3 * static_cast<double>(completed) / wall_ms : 0.0;
    }

    double shedFraction() const
    {
        const int64_t offered = completed + shed;
        return offered > 0 ? static_cast<double>(shed) / static_cast<double>(offered)
                           : 0.0;
    }
};

Percentiles
mergedLatency(const Cluster& c)
{
    HistogramSnapshot merged;
    for (const auto& s : c.servers)
        merged.merge(s->stats().latency_hist);
    return merged.percentiles();
}

/** Closed loop: `clients` threads each submit `iters` requests
 * back-to-back, waiting for each response. */
TrialResult
closedLoop(std::shared_ptr<const CompiledModel> model, RoutePolicy policy,
           int clients, int iters)
{
    Cluster c = makeCluster(model, 2, policy);
    const Tensor proto = [] {
        Tensor t(Shape{1, 3, 16, 16});
        Rng rng(17);
        t.fillUniform(rng, -1.0f, 1.0f);
        return t;
    }();

    std::atomic<int64_t> completed{0};
    std::atomic<int64_t> shed{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int cl = 0; cl < clients; ++cl)
        threads.emplace_back([&, cl] {
            for (int i = 0; i < iters; ++i) {
                const uint64_t key =
                    static_cast<uint64_t>(cl) * 1000003u + static_cast<uint64_t>(i);
                std::future<Tensor> f;
                auto r = c.router->trySubmit(kModel, key, Tensor(proto), &f);
                if (!r.ok()) {
                    shed.fetch_add(1);
                    continue;
                }
                f.get();
                completed.fetch_add(1);
            }
        });
    for (auto& t : threads)
        t.join();
    const auto t1 = std::chrono::steady_clock::now();

    TrialResult r;
    r.completed = completed.load();
    r.shed = shed.load();
    r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.lat = mergedLatency(c);
    return r;
}

/** Open loop: submit on a fixed timer at `offered_qps` for
 * `duration_ms` regardless of completions, then harvest. */
TrialResult
openLoop(std::shared_ptr<const CompiledModel> model, double offered_qps,
         double duration_ms)
{
    Cluster c = makeCluster(model, 2, RoutePolicy::kConsistentHash);
    Tensor proto(Shape{1, 3, 16, 16});
    Rng rng(29);
    proto.fillUniform(rng, -1.0f, 1.0f);

    const auto period = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(1.0 / offered_qps));
    const auto t0 = std::chrono::steady_clock::now();
    const auto t_end = t0 + std::chrono::duration<double, std::milli>(duration_ms);

    TrialResult r;
    std::vector<std::future<Tensor>> accepted;
    uint64_t key = 0;
    auto next = t0;
    while (true) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= t_end)
            break;
        std::future<Tensor> f;
        auto res = c.router->trySubmit(kModel, key++, Tensor(proto), &f);
        if (res.ok())
            accepted.push_back(std::move(f));
        else
            ++r.shed;
        next += period;
        // Bounded catch-up: a dispatcher stalled by host scheduling
        // resumes the timer from now instead of dumping its whole
        // backlog as one burst (which reads as a false shed storm).
        if (next + 8 * period < now)
            next = now;
        std::this_thread::sleep_until(next);
    }
    c.router->drainAll();
    const auto t1 = std::chrono::steady_clock::now();
    for (auto& f : accepted) {
        f.get();
        ++r.completed;
    }
    r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.lat = mergedLatency(c);
    return r;
}

/** Max offered load whose p99 meets `slo_p99_ms` with <= 1% shed:
 * binary search over [0, hi_qps], `steps` trials. Returns the best
 * passing trial (empty TrialResult when even the lowest probe fails). */
TrialResult
sloSearch(std::shared_ptr<const CompiledModel> model, double slo_p99_ms,
          double hi_qps, double trial_ms, int steps)
{
    TrialResult best;
    double lo = 0.0;
    double hi = hi_qps;
    for (int i = 0; i < steps; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (mid < 1.0)
            break;
        TrialResult r = openLoop(model, mid, trial_ms);
        if (r.lat.p99 <= slo_p99_ms && r.shedFraction() <= 0.01) {
            best = r;
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return best;
}

int
run()
{
    banner("serve-load", "SLO load generator over a 2-replica ShardRouter");
    const int reps = bench::reps();

    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(m, FrameworkKind::kPatDnnDense,
                                                       dev);

    // --- 1. Closed loop: concurrency sweep + policy comparison. ------
    // Enough samples per trial that p999 is an estimate rather than
    // the single worst scheduler hiccup.
    const int iters = 250 * reps;
    std::printf("--- Closed loop (2 replicas, %d requests/client) ---\n", iters);
    Table closed({"Clients", "qps", "p50 (ms)", "p99 (ms)", "p999 (ms)"});
    double capacity_qps = 0.0;
    for (int clients : {1, 2, 4}) {
        TrialResult r = closedLoop(model, RoutePolicy::kConsistentHash, clients,
                                   iters);
        capacity_qps = std::max(capacity_qps, r.qps());
        closed.addRow({"c" + std::to_string(clients), Table::num(r.qps(), 0),
                       Table::num(r.lat.p50, 3), Table::num(r.lat.p99, 3),
                       Table::num(r.lat.p999, 3)});
    }
    closed.print();

    std::printf("\n--- Routing policy (closed loop, 4 clients) ---\n");
    Table policy({"Policy", "qps", "p99 (ms)"});
    for (RoutePolicy p : {RoutePolicy::kConsistentHash, RoutePolicy::kLeastLoaded}) {
        TrialResult r = closedLoop(model, p, 4, iters);
        policy.addRow({routePolicyName(p), Table::num(r.qps(), 0),
                       Table::num(r.lat.p99, 3)});
    }
    policy.print();

    // --- 2. Open loop at fractions of the closed-loop capacity. ------
    const double trial_ms = 250.0 * reps;
    std::printf("\n--- Open loop (offered as fraction of closed-loop peak) ---\n");
    Table open({"Offered", "offered qps", "achieved qps", "shed %", "p50 (ms)",
                "p99 (ms)", "p999 (ms)"});
    // Fractions stay well below the closed-loop peak: the open-loop
    // dispatcher competes with the serving workers for cores, so the
    // sustainable open-loop rate sits below the closed-loop one.
    for (double frac : {0.2, 0.4, 0.6}) {
        const double offered = std::max(1.0, frac * capacity_qps);
        TrialResult r = openLoop(model, offered, trial_ms);
        open.addRow({Table::num(frac, 2) + "x", Table::num(offered, 0),
                     Table::num(r.qps(), 0), Table::num(100.0 * r.shedFraction(), 1),
                     Table::num(r.lat.p50, 3), Table::num(r.lat.p99, 3),
                     Table::num(r.lat.p999, 3)});
    }
    open.print();

    // --- 3. Max sustainable QPS under a p99 SLO. ---------------------
    // Each SLO is the larger of an absolute floor (scheduling jitter
    // puts a ~1 ms noise floor under short-trial p99 on shared hosts)
    // and a multiple of the measured single-client p50 (so slow /
    // sanitizer builds still get a meetable target). The reproduction
    // target is the ordering: the tight SLO sustains no more load than
    // the relaxed one.
    const double base_p50 =
        closedLoop(model, RoutePolicy::kConsistentHash, 1, iters).lat.p50;
    std::printf("\n--- Max sustainable QPS under p99 SLO (<=1%% shed) ---\n");
    Table slo({"SLO", "slo p99 (ms)", "max qps", "p99 at max (ms)", "shed %"});
    struct SloCase
    {
        const char* name;
        double floor_ms;
        double factor;
    };
    for (const SloCase sc :
         {SloCase{"tight", 1.0, 16.0}, SloCase{"relaxed", 4.0, 64.0}}) {
        const double slo_ms = std::max(sc.floor_ms, sc.factor * base_p50);
        TrialResult r = sloSearch(model, slo_ms, 1.5 * capacity_qps, trial_ms, 6);
        slo.addRow({sc.name, Table::num(slo_ms, 2), Table::num(r.qps(), 0),
                    Table::num(r.lat.p99, 3),
                    Table::num(100.0 * r.shedFraction(), 1)});
    }
    slo.print();

    std::printf("\nShape to check: closed-loop latency grows with concurrency "
                "while qps\nsaturates; open-loop shed stays ~0 below capacity; "
                "the tight SLO\nsustains no more load than the relaxed one.\n");
    return 0;
}

}  // namespace
}  // namespace patdnn::bench

int
main()
{
    return patdnn::bench::run();
}
