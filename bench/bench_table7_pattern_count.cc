/**
 * @file
 * Table 7 reproduction: impact of pattern count (6 / 8 / 12, with 3.6x
 * connectivity pruning) on accuracy AND execution time. Accuracy comes
 * from joint ADMM runs on the trainable stand-in; execution time from
 * the pattern engine over the whole VGG conv stack on CPU and the
 * GPU-like device. The paper's shape: accuracy creeps up with more
 * patterns while execution time jumps past 8 patterns (more kernel
 * code variants -> worse instruction locality / tuning space).
 */
#include "bench_common.h"

using namespace patdnn;

int
main()
{
    bench::banner("Table 7", "pattern-count impact on accuracy and time");
    SyntheticShapes data(4, 12, 1, 224, 96, 71);
    Model vgg = buildVGG16(Dataset::kImageNet);
    auto descs = bench::scaledConvDescs(vgg, bench::spatialScale());

    Table t({"#Patterns", "Accuracy (%)", "Acc drop (%)", "CPU (ms)", "GPU (ms)"});
    double dense_acc = 0.0;
    {
        Net net = buildVggStyleNet(4, 12, 1, 8, 81);
        TrainConfig tc;
        tc.epochs = 5;
        tc.batch_size = 16;
        tc.lr = 2e-3f;
        dense_acc = trainNet(net, data, tc).test_accuracy;
    }
    for (int patterns : {6, 8, 12}) {
        Net net = buildVggStyleNet(4, 12, 1, 8, 81);
        TrainConfig tc;
        tc.epochs = 5;
        tc.batch_size = 16;
        tc.lr = 2e-3f;
        trainNet(net, data, tc);
        PruneOptions opts;
        opts.pattern_count = patterns;
        opts.connectivity_rate = 3.6;
        opts.retrain_epochs = 3;
        opts.admm.admm_iterations = 2;
        opts.admm.epochs_per_iteration = 2;
        opts.admm.retrain_epochs = 3;
        PruneReport r =
            pruneWithScheme(net, data, PruneScheme::kPatternConnectivity, opts);

        CompileOptions copts;
        copts.pattern_count = patterns;
        double cpu = bench::convStackTimeMs(descs, FrameworkKind::kPatDnn,
                                            makeCpuDevice(8), copts);
        double gpu = bench::convStackTimeMs(descs, FrameworkKind::kPatDnn,
                                            makeGpuDevice(), copts);
        t.addRow({std::to_string(patterns), Table::num(100 * r.pruned_accuracy, 1),
                  Table::num(100 * (dense_acc - r.pruned_accuracy), 1),
                  Table::num(cpu, 1), Table::num(gpu, 1)});
    }
    t.print();
    std::printf("\nPaper (VGG-16/ImageNet): 6 patterns 91.4%% @ 50.5ms CPU, 8 "
                "patterns 91.6%% @ 51.8ms, 12 patterns 91.7%% @ 92.5ms — "
                "accuracy creeps up, time jumps past 8.\n");
    return 0;
}
