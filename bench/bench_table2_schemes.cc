/**
 * @file
 * Table 2 reproduction: qualitative comparison of the pruning schemes
 * on accuracy and hardware speedup at the same pruning rate. We train
 * one small CNN per scheme on SyntheticShapes (the ImageNet stand-in,
 * see docs/ARCHITECTURE.md), prune to ~2.25x, fine-tune, and measure
 * speedup on a representative layer with the engine each scheme maps
 * to (CSR for non-structured, shrunken dense for filter/channel, the
 * pattern engine for pattern/connectivity).
 */
#include "bench_common.h"

using namespace patdnn;

namespace {

/** Execution time of a representative VGG-class layer per scheme. */
double
schemeLayerMs(PruneScheme scheme, const DeviceSpec& dev)
{
    auto layers = vggUniqueLayers(bench::spatialScale());
    const ConvDesc& d = layers[4];  // L5 = [256,128,3,3].
    switch (scheme) {
      case PruneScheme::kNonStructured:
        return CompiledConvLayer(d, FrameworkKind::kCsrSparse, dev)
            .timeMs(1, bench::reps());
      case PruneScheme::kFilter:
      case PruneScheme::kChannel: {
        // Structured pruning shrinks the dense layer by the rate.
        ConvDesc shrunk = d;
        shrunk.cout = static_cast<int64_t>(d.cout / 2.25);
        return CompiledConvLayer(shrunk, FrameworkKind::kPatDnnDense, dev)
            .timeMs(1, bench::reps());
      }
      case PruneScheme::kPattern:
      case PruneScheme::kConnectivity:
        return CompiledConvLayer(d, FrameworkKind::kPatDnn, dev)
            .timeMs(1, bench::reps());
      default:
        return CompiledConvLayer(d, FrameworkKind::kPatDnnDense, dev)
            .timeMs(1, bench::reps());
    }
}

}  // namespace

int
main()
{
    bench::banner("Table 2", "pruning schemes: accuracy vs hardware speedup");
    SyntheticShapes data(4, 12, 1, 192, 96, 11);
    DeviceSpec dev = makeCpuDevice(8);
    double dense_ms = schemeLayerMs(PruneScheme::kNone, dev);

    Table t({"Scheme", "Accuracy (dense)", "Accuracy (pruned)", "Acc drop",
             "Layer speedup vs dense"});
    const PruneScheme schemes[] = {PruneScheme::kNonStructured, PruneScheme::kFilter,
                                   PruneScheme::kPattern,
                                   PruneScheme::kConnectivity};
    for (PruneScheme scheme : schemes) {
        Net net = buildVggStyleNet(4, 12, 1, 8, 21);
        TrainConfig tc;
        tc.epochs = 5;
        tc.batch_size = 16;
        tc.lr = 2e-3f;
        trainNet(net, data, tc);
        PruneOptions opts;
        opts.target_compression = 2.25;
        opts.retrain_epochs = 3;
        opts.admm.admm_iterations = 2;
        opts.admm.epochs_per_iteration = 2;
        opts.admm.retrain_epochs = 3;
        PruneReport r = pruneWithScheme(net, data, scheme, opts);
        double ms = schemeLayerMs(scheme, dev);
        t.addRow({pruneSchemeName(scheme), Table::num(100 * r.dense_accuracy, 1),
                  Table::num(100 * r.pruned_accuracy, 1),
                  Table::num(100 * (r.dense_accuracy - r.pruned_accuracy), 1),
                  Table::num(dense_ms / ms, 2) + "x"});
    }
    t.print();
    std::printf("\nPaper shape to check: non-structured = highest accuracy but "
                "minor speedup; filter/channel = speedup but accuracy loss; "
                "pattern & connectivity = both high accuracy and high speedup.\n");
    return 0;
}
