/**
 * @file
 * google-benchmark micro-benchmarks for the hot building blocks:
 * pattern micro-kernels (LRE vs no-LRE vs multi-filter), FKW packing,
 * FKR, projections, and a single pattern-engine layer. These are the
 * kernels whose relative costs explain the figure-level results.
 */
#include <benchmark/benchmark.h>

#include "core/patdnn.h"

namespace patdnn {
namespace {

struct KernelFixture
{
    PatternKernel pk;
    float weights[4];
    Tensor in;
    Tensor out;
    PlaneGeom geom;

    KernelFixture()
    {
        Pattern p(3, 3, std::vector<int>{4, 1, 3, 5});
        pk = lowerPattern(p);
        Rng rng(1);
        for (auto& w : weights)
            w = rng.normal();
        in = Tensor(Shape{64, 64});
        in.fillUniform(rng, -1.0f, 1.0f);
        out = Tensor(Shape{64, 64});
        geom = PlaneGeom{64, 64, 64, 64, 1, 1, 0, 64, 0, 64};
    }
};

void
BM_SimdAccumRows(benchmark::State& state, const SimdOps& ops)
{
    Rng rng(6);
    constexpr int64_t kN = 1024;
    constexpr int kLive = 4;
    Tensor row_data(Shape{kLive, kN});
    row_data.fillUniform(rng, -1.0f, 1.0f);
    const float* rows[kLive];
    float w[kLive];
    for (int e = 0; e < kLive; ++e) {
        rows[e] = row_data.data() + e * kN;
        w[e] = rng.normal();
    }
    Tensor out(Shape{kN});
    for (auto _ : state) {
        ops.accum_rows(rows, w, kLive, out.data(), kN, 16);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * kN * kLive);
    state.SetLabel(ops.name);
}
BENCHMARK_CAPTURE(BM_SimdAccumRows, scalar, scalarSimdOps());
BENCHMARK_CAPTURE(BM_SimdAccumRows, dispatched, resolveSimdOps(detectSimdIsa()));

void
BM_MicrokernelLre(benchmark::State& state)
{
    KernelFixture f;
    for (auto _ : state) {
        kernelAccumulateLre(f.pk, f.weights, f.in.data(), f.out.data(), f.geom,
                            static_cast<int>(state.range(0)));
        benchmark::DoNotOptimize(f.out.data());
    }
    state.SetItemsProcessed(state.iterations() * 64 * 64 * 4);
}
BENCHMARK(BM_MicrokernelLre)->Arg(2)->Arg(4)->Arg(8);

void
BM_MicrokernelNoLre(benchmark::State& state)
{
    KernelFixture f;
    for (auto _ : state) {
        kernelAccumulateNoLre(f.pk, f.weights, f.in.data(), f.out.data(), f.geom);
        benchmark::DoNotOptimize(f.out.data());
    }
    state.SetItemsProcessed(state.iterations() * 64 * 64 * 4);
}
BENCHMARK(BM_MicrokernelNoLre);

void
BM_MicrokernelMultiFilter(benchmark::State& state)
{
    KernelFixture f;
    int count = static_cast<int>(state.range(0));
    std::vector<Tensor> outs(static_cast<size_t>(count), Tensor(Shape{64, 64}));
    std::vector<float*> optrs;
    std::vector<const float*> wptrs;
    for (int i = 0; i < count; ++i) {
        optrs.push_back(outs[static_cast<size_t>(i)].data());
        wptrs.push_back(f.weights);
    }
    for (auto _ : state) {
        kernelAccumulateMultiFilter(f.pk, wptrs.data(), f.in.data(), optrs.data(),
                                    count, f.geom);
        benchmark::DoNotOptimize(optrs.data());
    }
    state.SetItemsProcessed(state.iterations() * 64 * 64 * 4 * count);
}
BENCHMARK(BM_MicrokernelMultiFilter)->Arg(2)->Arg(4);

void
BM_ProjectJoint(benchmark::State& state)
{
    Rng rng(2);
    PatternSet set = canonicalPatternSet(8);
    Tensor original(Shape{64, 64, 3, 3});
    original.fillNormal(rng);
    for (auto _ : state) {
        Tensor w = original;
        PatternAssignment asg = projectJoint(w, set, 1138);
        benchmark::DoNotOptimize(asg.pattern_of_kernel.data());
    }
}
BENCHMARK(BM_ProjectJoint);

void
BM_FkrAndFkwBuild(benchmark::State& state)
{
    Rng rng(3);
    PatternSet set = canonicalPatternSet(8);
    Tensor w(Shape{64, 64, 3, 3});
    w.fillNormal(rng);
    PatternAssignment asg = projectJoint(w, set, 1138);
    for (auto _ : state) {
        FkrResult fkr = filterKernelReorder(asg);
        FkwLayer fkw = buildFkw(w, set, asg, fkr);
        benchmark::DoNotOptimize(fkw.weights.data());
    }
}
BENCHMARK(BM_FkrAndFkwBuild);

void
BM_PatternConvLayer(benchmark::State& state)
{
    ConvDesc d{"m", 64, 64, 3, 3, 28, 28, 1, 1, 1, 1};
    DeviceSpec dev = makeCpuDevice(static_cast<int>(state.range(0)));
    CompiledConvLayer layer(d, FrameworkKind::kPatDnn, dev);
    Tensor in(Shape{1, d.cin, d.h, d.w});
    Rng rng(4);
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor out = makeConvOutput(d, 1);
    for (auto _ : state) {
        layer.run(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * layer.effectiveMacs());
}
BENCHMARK(BM_PatternConvLayer)->Arg(1)->Arg(4)->Arg(8);

void
BM_Im2colDenseLayer(benchmark::State& state)
{
    ConvDesc d{"m", 64, 64, 3, 3, 28, 28, 1, 1, 1, 1};
    DeviceSpec dev = makeCpuDevice(4);
    CompiledConvLayer layer(d, FrameworkKind::kTvmLike, dev);
    Tensor in(Shape{1, d.cin, d.h, d.w});
    Rng rng(5);
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor out = makeConvOutput(d, 1);
    for (auto _ : state) {
        layer.run(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * layer.effectiveMacs());
}
BENCHMARK(BM_Im2colDenseLayer);

/**
 * Packed tiled GEMM (rt/gemm_packed.h, the run path) vs the
 * register-blocked pre-packing GEMM it replaced (Im2colConv::runNaive,
 * kept callable exactly for this comparison) on zoo-representative
 * dense shapes: the VGG first conv (3->64 3x3 @ 32x32, where dense
 * executors do the whole work), a mid-net conv, and an FC-like 1x1.
 * The acceptance gate for the packed backend is >= 2x on AVX2 here.
 */
void
BM_DenseGemmConv(benchmark::State& state, ConvDesc d, bool packed)
{
    Rng rng(9);
    Tensor w(Shape{d.cout, d.cinPerGroup(), d.kh, d.kw});
    w.fillHe(rng, d.cinPerGroup() * d.kh * d.kw);
    Tensor in(Shape{1, d.cin, d.h, d.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    DeviceSpec dev = makeCpuDevice(4);
    Im2colConv engine(d, &w, dev);
    Tensor out = makeConvOutput(d, 1);
    for (auto _ : state) {
        if (packed)
            engine.run(in, out);
        else
            engine.runNaive(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    int64_t macs = d.outH() * d.outW() * d.cout * d.cinPerGroup() * d.kh * d.kw;
    state.SetItemsProcessed(state.iterations() * macs);
    state.SetLabel(packed ? "packed" : "naive");
}
BENCHMARK_CAPTURE(BM_DenseGemmConv, first_conv_naive,
                  ConvDesc{"c1", 3, 64, 3, 3, 32, 32, 1, 1, 1, 1}, false);
BENCHMARK_CAPTURE(BM_DenseGemmConv, first_conv_packed,
                  ConvDesc{"c1", 3, 64, 3, 3, 32, 32, 1, 1, 1, 1}, true);
BENCHMARK_CAPTURE(BM_DenseGemmConv, mid_conv_naive,
                  ConvDesc{"c8", 128, 128, 3, 3, 16, 16, 1, 1, 1, 1}, false);
BENCHMARK_CAPTURE(BM_DenseGemmConv, mid_conv_packed,
                  ConvDesc{"c8", 128, 128, 3, 3, 16, 16, 1, 1, 1, 1}, true);
BENCHMARK_CAPTURE(BM_DenseGemmConv, fc_like_naive,
                  ConvDesc{"fc", 256, 256, 1, 1, 8, 8, 1, 0, 1, 1}, false);
BENCHMARK_CAPTURE(BM_DenseGemmConv, fc_like_packed,
                  ConvDesc{"fc", 256, 256, 1, 1, 8, 8, 1, 0, 1, 1}, true);

/**
 * Int8 quantized dense conv (k-pair i8 panels + SimdOps::gemm_tile_i8
 * + f32 requant epilogue) on the same shapes as the f32 packed rows
 * above — the Fig. 17 int8-vs-f32 column at micro scale. The i8 GEMM
 * gate is >= 1.5x over packed f32 at the whole-VGG-stack level
 * (bench_fig17_gflops section a); per-shape ratios vary with the
 * quantize/pack share of the runtime.
 */
void
BM_DenseGemmConvI8(benchmark::State& state, ConvDesc d)
{
    Rng rng(9);
    Tensor w(Shape{d.cout, d.cinPerGroup(), d.kh, d.kw});
    w.fillHe(rng, d.cinPerGroup() * d.kh * d.kw);
    Tensor in(Shape{1, d.cin, d.h, d.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    DeviceSpec dev = makeCpuDevice(4);
    ActivationCalibrator cal(CalibrationMethod::kAbsMax);
    cal.observe(in);
    Im2colConv engine(d, &w, dev, TuneParams{}, cal.scale());
    Tensor out = makeConvOutput(d, 1);
    for (auto _ : state) {
        engine.run(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    int64_t macs = d.outH() * d.outW() * d.cout * d.cinPerGroup() * d.kh * d.kw;
    state.SetItemsProcessed(state.iterations() * macs);
    state.SetLabel("packed-i8");
}
BENCHMARK_CAPTURE(BM_DenseGemmConvI8, first_conv_i8,
                  ConvDesc{"c1", 3, 64, 3, 3, 32, 32, 1, 1, 1, 1});
BENCHMARK_CAPTURE(BM_DenseGemmConvI8, mid_conv_i8,
                  ConvDesc{"c8", 128, 128, 3, 3, 16, 16, 1, 1, 1, 1});
BENCHMARK_CAPTURE(BM_DenseGemmConvI8, fc_like_i8,
                  ConvDesc{"fc", 256, 256, 1, 1, 8, 8, 1, 0, 1, 1});

void
BM_GraphOptimize(benchmark::State& state)
{
    Model m = buildVGG16(Dataset::kCifar10);
    for (auto _ : state) {
        Graph g = buildGraph(m);
        optimizeGraph(g);
        benchmark::DoNotOptimize(g.nodes().data());
    }
}
BENCHMARK(BM_GraphOptimize);

/**
 * The activation memory planner (rt/memplan.h) over each zoo model:
 * times the lifetime-analysis + arena-packing pass alone (the compile
 * stage a v4 artifact save pays), and reports the memory column —
 * planned arena vs legacy per-layer workspace bytes at batch 1. The
 * dense framework kind skips pruning so setup stays cheap; planning is
 * geometry-only and identical across kinds.
 */
void
BM_MemoryPlanZoo(benchmark::State& state, const char* short_name)
{
    Model m = buildByShortName(short_name, Dataset::kCifar10);
    CompileOptions copts;
    copts.enable_memory_plan = false;  // The loop runs the pass itself.
    CompiledModel compiled(m, FrameworkKind::kTfliteLike, makeCpuDevice(1),
                           copts);
    std::vector<PlanNode> nodes = compiled.planNodes();
    int output_node = compiled.outputNode();
    MemoryPlan plan;
    for (auto _ : state) {
        plan = planActivations(nodes, output_node);
        benchmark::DoNotOptimize(plan.arenaElemsPerSample());
    }
    state.counters["arena_kb"] =
        static_cast<double>(plan.arenaBytes(1)) / 1024.0;
    state.counters["legacy_kb"] =
        static_cast<double>(plan.sumBytes(1)) / 1024.0;
    state.counters["reduction_x"] = static_cast<double>(plan.sumBytes(1)) /
                                    static_cast<double>(plan.arenaBytes(1));
}
BENCHMARK_CAPTURE(BM_MemoryPlanZoo, vgg, "VGG");
BENCHMARK_CAPTURE(BM_MemoryPlanZoo, rnt, "RNT");
BENCHMARK_CAPTURE(BM_MemoryPlanZoo, mbnt, "MBNT");

/**
 * Raw cost of one TraceSpan (obs/trace.h) in each runtime state:
 * dormant (compiled in, collection off — one relaxed atomic load) vs
 * live (two clock reads + a ring write). In PATDNN_ENABLE_TRACING=OFF
 * builds both are an empty object and time the loop itself.
 */
void
BM_TraceSpan(benchmark::State& state, bool live)
{
    Tracer::setEnabled(live);
    for (auto _ : state) {
        TraceSpan span("bench.span", "bench");
        benchmark::DoNotOptimize(&span);
    }
    Tracer::setEnabled(false);
    state.SetLabel(!Tracer::compiledIn() ? "compiled-out"
                                         : (live ? "live" : "dormant"));
}
BENCHMARK_CAPTURE(BM_TraceSpan, dormant, false);
BENCHMARK_CAPTURE(BM_TraceSpan, live, true);

/**
 * The tracing overhead guard (observability acceptance gate): a full
 * zoo forward pass with the tracer live vs dormant. The live/dormant
 * ratio must stay within the noise — tools/bench_diff.py only compares
 * orders, and CI runs both cells, so a hot-path regression that makes
 * tracing expensive flips the order against BM_TraceOverheadZoo/off
 * and fails the baseline diff. Locally: the two medians should agree
 * within ~3%.
 */
void
BM_TraceOverheadZoo(benchmark::State& state, bool live)
{
    Model m = buildVGG16(Dataset::kCifar10);
    CompiledModel compiled(m, FrameworkKind::kPatDnnDense, makeCpuDevice(4));
    Workspace ws;
    Rng rng(8);
    Tensor in(Shape{1, 3, 32, 32});
    in.fillUniform(rng, -1.0f, 1.0f);
    Tracer::setEnabled(live);
    for (auto _ : state) {
        Tensor out = compiled.run(in, ws);
        benchmark::DoNotOptimize(out.data());
    }
    Tracer::setEnabled(false);
    state.SetLabel(!Tracer::compiledIn() ? "compiled-out"
                                         : (live ? "live" : "dormant"));
}
BENCHMARK_CAPTURE(BM_TraceOverheadZoo, off, false);
BENCHMARK_CAPTURE(BM_TraceOverheadZoo, on, true);

}  // namespace
}  // namespace patdnn

BENCHMARK_MAIN();
