/**
 * @file
 * Fig. 18 reproduction: portability across SoC presets. The paper runs
 * the same binaries on Snapdragon 855 / Snapdragon 845 / Kirin 980 and
 * observes that the baselines degrade much more on the weaker SoCs
 * than PatDNN does (its compressed models put less pressure on memory
 * bandwidth). Our DeviceSpec presets differ in worker count and tile
 * budget, modelling the same resource narrowing.
 */
#include "bench_common.h"

using namespace patdnn;

int
main()
{
    bench::banner("Fig. 18", "portability across platform presets (VGG conv, ms)");
    Model vgg = buildVGG16(Dataset::kImageNet);
    auto descs = bench::scaledConvDescs(vgg, bench::spatialScale());
    const FrameworkKind kinds[] = {
        FrameworkKind::kTfliteLike, FrameworkKind::kTvmLike,
        FrameworkKind::kMnnLike, FrameworkKind::kPatDnn};
    struct Preset { const char* label; DeviceSpec dev; };
    Preset presets[] = {
        {"Snapdragon-855-sim", makeSnapdragon855()},
        {"Snapdragon-845-sim", makeSnapdragon845()},
        {"Kirin-980-sim", makeKirin980()},
    };
    Table t({"Platform", "TFLite-like", "TVM-like", "MNN-like", "PatDNN",
             "PatDNN slowdown vs 855"});
    double patdnn_855 = 0.0;
    for (auto& p : presets) {
        std::vector<std::string> row = {p.label};
        double pat = 0.0;
        for (FrameworkKind kind : kinds) {
            double ms = bench::convStackTimeMs(descs, kind, p.dev);
            row.push_back(Table::num(ms, 1));
            if (kind == FrameworkKind::kPatDnn)
                pat = ms;
        }
        if (patdnn_855 == 0.0)
            patdnn_855 = pat;
        row.push_back(Table::num(pat / patdnn_855, 2) + "x");
        t.addRow(row);
    }
    t.print();
    std::printf("\nPaper shape to check: PatDNN remains fastest on every platform "
                "and degrades more gracefully than the dense baselines as the "
                "platform weakens.\n");
    return 0;
}
