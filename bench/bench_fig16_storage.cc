/**
 * @file
 * Fig. 16 reproduction: extra data-structure overhead of FKW relative
 * to CSR on each unique VGG CONV layer under three overall pruning
 * rates (18x, 12x, 8x). The paper reports FKW saving 93.4% / 91.6% /
 * 87.9% of CSR's index bytes; we print FKW/CSR (%) per layer and the
 * aggregate, plus the resulting whole-layer storage saving.
 */
#include "bench_common.h"

using namespace patdnn;

namespace {

/** Connectivity rate that combines with 4-of-9 patterns to hit the
 * overall target (overall = 2.25 * connectivity). */
double
connectivityRateFor(double overall)
{
    return overall / 2.25;
}

}  // namespace

int
main()
{
    bench::banner("Fig. 16", "FKW vs CSR extra structure overhead");
    const double rates[] = {18.0, 12.0, 8.0};
    auto layers = vggUniqueLayers(bench::spatialScale());
    PatternSet set = canonicalPatternSet(8);

    for (double overall : rates) {
        double conn = connectivityRateFor(overall);
        Table t({"Layer", "CSR idx (KB)", "FKW idx (KB)", "FKW/CSR (%)",
                 "Total saving (%)"});
        size_t csr_total = 0, fkw_total = 0, csr_all = 0, fkw_all = 0;
        Rng rng(1);
        for (const auto& d : layers) {
            Tensor w(Shape{d.cout, d.cin, d.kh, d.kw});
            w.fillNormal(rng);
            int64_t kernels = d.cout * d.cin;
            int64_t alpha = std::max<int64_t>(
                1, static_cast<int64_t>(std::ceil(kernels / conn)));
            Tensor pruned = w;
            FkwLayer fkw = pruneAndPack(pruned, set, alpha);
            CsrWeights csr = buildCsr(pruned);
            csr_total = csr.indexBytes();
            fkw_total = fkw.indexBytes();
            csr_all += csr_total;
            fkw_all += fkw_total;
            double ratio = 100.0 * static_cast<double>(fkw_total) /
                           static_cast<double>(csr_total);
            double saving =
                100.0 *
                (1.0 - static_cast<double>(fkw.totalBytes()) /
                           static_cast<double>(csr.totalBytes()));
            t.addRow({d.name, Table::num(csr_total / 1024.0, 1),
                      Table::num(fkw_total / 1024.0, 1), Table::num(ratio, 1),
                      Table::num(saving, 1)});
        }
        double all_ratio =
            100.0 * static_cast<double>(fkw_all) / static_cast<double>(csr_all);
        t.addRow({"All", Table::num(csr_all / 1024.0, 1),
                  Table::num(fkw_all / 1024.0, 1), Table::num(all_ratio, 1), "-"});
        std::printf("--- overall pruning rate %.0fx (pattern 2.25x * connectivity "
                    "%.2fx): index-overhead saving %.1f%% ---\n",
                    overall, conn, 100.0 - all_ratio);
        t.print();
        std::printf("\n");
    }
    std::printf("Paper: FKW saves 93.4%% / 91.6%% / 87.9%% of CSR's extra bytes at "
                "18x / 12x / 8x.\n");
    return 0;
}
