/**
 * @file
 * Fig. 14 reproduction.
 *
 * (a) Filter-length distribution of VGG L4 before and after Filter
 *     Kernel Reorder: before, lengths are scattered across filter
 *     positions (thread load imbalance); after, filters fall into a
 *     few equal-length groups.
 * (b) Register load counts per unique VGG layer before and after
 *     load redundancy elimination (analytic model over the executed
 *     plan; see src/rt/load_analysis.*).
 * (c) Whole-model per-layer time attribution from the runtime's own
 *     RunProfile (obs/profile.h), cross-checked against this harness's
 *     external wall-clock timer: the profile must account for the
 *     model run within 10% (CHECK-enforced), so the Fig. 14-style
 *     breakdown tables the runtime reports can be trusted.
 */
#include <algorithm>

#include "bench_common.h"

using namespace patdnn;

int
main()
{
    bench::banner("Fig. 14", "FKR load balance + LRE register-load profile");
    PatternSet set = canonicalPatternSet(8);
    auto layers = vggUniqueLayers(bench::spatialScale());

    // --- (a) filter length distribution for L4 ---
    {
        const ConvDesc& d = layers[3];  // L4 = [128,128,3,3].
        Rng rng(4);
        Tensor w(Shape{d.cout, d.cin, d.kh, d.kw});
        w.fillNormal(rng);
        int64_t alpha = static_cast<int64_t>(d.cout * d.cin / 3.6);
        PatternAssignment asg = projectJoint(w, set, alpha);

        FkrOptions off;
        off.reorder_filters = false;
        off.similarity_within_group = false;
        off.reorder_kernels = false;
        FkrResult before = filterKernelReorder(asg, off);
        FkrResult after = filterKernelReorder(asg);

        auto lb = filterLengths(before);
        auto la = filterLengths(after);
        auto spread = [](const std::vector<int32_t>& v) {
            // Mean absolute length difference between adjacent filters —
            // the quantity that creates warp/thread divergence.
            double s = 0.0;
            for (size_t i = 1; i < v.size(); ++i)
                s += std::abs(v[i] - v[i - 1]);
            return s / static_cast<double>(v.size() - 1);
        };
        std::printf("--- (a) L4 filter lengths (non-empty kernels per filter) ---\n");
        std::printf("first 16 before reorder: ");
        for (int i = 0; i < 16; ++i)
            std::printf("%d ", lb[static_cast<size_t>(i)]);
        std::printf("\nfirst 16 after reorder:  ");
        for (int i = 0; i < 16; ++i)
            std::printf("%d ", la[static_cast<size_t>(i)]);
        std::printf("\nadjacent-length spread: before %.2f -> after %.2f\n",
                    spread(lb), spread(la));
        std::printf("equal-length groups after reorder: %zu (each maps to one "
                    "thread block / balanced CPU task)\n\n",
                    after.groups.size());
    }

    // --- (b) register load counts per layer ---
    {
        std::printf("--- (b) register load counts (millions) ---\n");
        Table t({"Layer", "No-Eliminate", "Eliminate", "Reduction"});
        Rng rng(5);
        // Fixed width: the analytic load model must describe the
        // paper's 8-thread target, not whatever core count this CI
        // cell has (makeCpuDevice clamps to hardware_concurrency,
        // which skews the committed baseline on small runners).
        DeviceSpec dev = makeFixedWidthCpuDevice(8);
        for (const auto& d : layers) {
            Tensor w(Shape{d.cout, d.cin, d.kh, d.kw});
            w.fillNormal(rng);
            int64_t alpha = static_cast<int64_t>(d.cout * d.cin / 3.6);
            Tensor pruned = w;
            FkwLayer fkw = pruneAndPack(pruned, set, alpha);
            LayerwiseRep lr;
            lr.conv = d;
            lr.opts.lre = false;
            LoadCounts off = analyzeLoads(d, fkw, lr, dev);
            lr.opts.lre = true;
            LoadCounts on = analyzeLoads(d, fkw, lr, dev);
            t.addRow({d.name, Table::num(off.total() / 1e6, 1),
                      Table::num(on.total() / 1e6, 1),
                      Table::num(static_cast<double>(off.total()) /
                                     static_cast<double>(on.total()),
                                 2) + "x"});
        }
        t.print();
    }

    // --- (c) runtime per-layer profile vs harness timer ---
    {
        std::printf("\n--- (c) whole-model per-layer profile (VGG-16, pattern "
                    "engine) ---\n");
        Model m = buildVGG16(Dataset::kCifar10);
        CompiledModel compiled(m, FrameworkKind::kPatDnn, makeCpuDevice(4));
        Workspace ws;
        Rng rng(14);
        Tensor in(Shape{1, 3, 32, 32});
        in.fillUniform(rng, -1.0f, 1.0f);
        compiled.run(in, ws);  // Warm caches and the workspace.

        RunProfile merged;
        double harness_ms = 0.0;
        for (int i = 0; i < bench::reps(); ++i) {
            RunProfile p;
            Timer t;
            compiled.run(in, ws, &p);
            harness_ms += t.elapsedMs();
            merged.merge(p);
        }
        std::printf("%s", merged.renderTable().c_str());

        // The profile's per-layer sum must account for the harness's
        // external wall clock: everything outside the per-node timing
        // (workspace prep, output copy) is supposed to be noise. This
        // pins the attribution numbers the runtime reports.
        double profile_ms = static_cast<double>(merged.totalNs()) / 1e6;
        double covered = harness_ms > 0.0 ? profile_ms / harness_ms : 0.0;
        std::printf("profile total %.3f ms vs harness timer %.3f ms "
                    "(%.1f%% attributed)\n",
                    profile_ms, harness_ms, 100.0 * covered);
        PATDNN_CHECK(covered > 0.90 && covered < 1.10,
                     "RunProfile disagrees with the harness timer by more "
                     "than 10%: " << profile_ms << " vs " << harness_ms
                     << " ms");
    }
    return 0;
}
