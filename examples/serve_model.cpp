/**
 * @file
 * The deployment path end-to-end: compile a zoo model with the full
 * pattern engine, freeze it into a binary artifact (header v3 records
 * the compile options + device fingerprint), reload it the way a
 * serving host would, and serve it from a multi-model ModelRegistry —
 * two named models sharing one compute pool, a linger window
 * coalescing the sparse tail of the request stream, and a deadline on
 * every request so backlogged work is shed, not computed.
 *
 * The final act is the horizontal-scale tier: a ShardRouter spreads
 * one model's traffic across two replica servers with consistent-hash
 * affinity, a replica outage turns into ejection + transparent
 * failover (no client-visible error), and a shared AdmissionController
 * with a deliberately tiny budget shows overload shedding with a
 * machine-readable admission slug.
 *
 * Build & run:   cmake -B build && cmake --build build -j
 *                ./build/examples/serve_model
 */
#include <cstdio>
#include <future>
#include <vector>

#include "core/patdnn.h"
#include "util/table.h"

using namespace patdnn;

int
main()
{
    // Compile once via the Compiler pipeline facade (training +
    // execution-code-generation products all land in the
    // CompiledModel), as a model-build farm would.
    Model model = buildVGG16(Dataset::kCifar10);
    DeviceSpec device = makeCpuDevice(8);
    std::printf("compiling %s for %s (pattern engine)...\n",
                model.name().c_str(), device.name.c_str());
    Compiler compiler(device);
    Result<std::shared_ptr<CompiledModel>> built = compiler.compile(model);
    if (!built.ok()) {
        std::printf("compile failed: %s\n", built.status().toString().c_str());
        return 1;
    }
    std::shared_ptr<CompiledModel> compiled = std::move(built).value();
    std::printf("conv weights: %lld non-zero of %lld dense (%.1fx compression)\n",
                static_cast<long long>(compiled->convNonZeros()),
                static_cast<long long>(compiled->convDense()),
                static_cast<double>(compiled->convDense()) /
                    static_cast<double>(compiled->convNonZeros()));

    // Freeze to a distributable artifact and inspect its provenance on
    // the way back in (checksum + FKW invariants re-validated; the v3
    // header carries the compile options + device fingerprint). Every
    // failure is a typed Status: code() says what class of problem,
    // detail() the exact artifact failure mode, message() the prose.
    const std::string path = "vgg16_cifar10.pdnn";
    Status saved = saveModel(*compiled, path);
    if (!saved.ok()) {
        std::printf("save failed: %s\n", saved.toString().c_str());
        return 1;
    }
    ArtifactInfo info;
    Result<std::shared_ptr<CompiledModel>> reloaded =
        loadModel(path, device, ArtifactLoadOptions{}, &info);
    if (!reloaded.ok()) {
        std::printf("load failed [%s]: %s\n",
                    errorCodeName(reloaded.status().code()),
                    reloaded.status().message().c_str());
        return 1;
    }
    std::shared_ptr<CompiledModel> loaded = std::move(reloaded).value();
    std::printf("artifact %s round-tripped: v%u, tuned on %s, pool width %d, "
                "%d patterns, connectivity %.1f\n",
                path.c_str(), info.version, isaName(info.tuned_isa),
                info.pool_width, info.compile_opts.pattern_count,
                info.compile_opts.connectivity_rate);

    // One serving process, several named models, one shared compute
    // pool: the registry routes by name. A dense compilation of the
    // same net stands in for "a second model".
    RegistryOptions ropts;
    ropts.device = device;
    ropts.server.workers = 2;
    ropts.server.max_batch = 8;
    ropts.server.max_linger_ms = 2.0;  // Coalesce the sparse tail.
    auto registry = serveRegistry(ropts);
    Compiler registry_compiler(registry->device());
    Result<std::shared_ptr<CompiledModel>> dense =
        registry_compiler.compile(model, FrameworkKind::kPatDnnDense);
    if (!dense.ok()) {
        std::printf("compile failed: %s\n", dense.status().toString().c_str());
        return 1;
    }
    Status added = registry->add("vgg16-pattern", loaded);
    if (added.ok())
        added = registry->add("vgg16-dense", dense.value());
    if (!added.ok()) {
        std::printf("registry add failed: %s\n", added.toString().c_str());
        return 1;
    }

    // A burst of async requests against both models; every request
    // carries a deadline so a backlogged server sheds instead of
    // serving stale work.
    constexpr int kBurst = 32;
    Rng rng(42);
    std::vector<std::future<Tensor>> futures;
    futures.reserve(2 * kBurst);
    for (int i = 0; i < kBurst; ++i) {
        SubmitOptions sopts;
        sopts.deadline = registry->deadlineIn(10000.0);
        for (const char* name : {"vgg16-pattern", "vgg16-dense"}) {
            Tensor in(Shape{1, 3, 32, 32});
            in.fillUniform(rng, -1.0f, 1.0f);
            futures.push_back(registry->submit(name, std::move(in), sopts));
        }
    }
    int completed = 0, shed = 0;
    for (auto& f : futures) {
        try {
            f.get();
            ++completed;
        } catch (const ServeError& e) {
            // One exception type for every serving failure; dispatch
            // on the code instead of the type.
            if (e.code() != ErrorCode::kDeadlineExceeded)
                throw;
            ++shed;
        }
    }
    registry->drainAll();

    Table table({"model", "completed", "batches", "avg batch", "p50 ms",
                 "p99 ms", "shed"});
    for (const std::string& name : registry->names()) {
        ServerStats stats = registry->stats(name);
        table.addRow({name, Table::num(stats.completed, 0),
                      Table::num(stats.batches, 0), Table::num(stats.avg_batch),
                      Table::num(stats.p50_ms), Table::num(stats.p99_ms),
                      Table::num(stats.deadline_exceeded, 0)});
    }
    table.print();
    std::printf("client view: %d completed, %d deadline-shed\n", completed, shed);
    registry->shutdownAll();

    // --- Horizontal scale: ShardRouter over two replicas. -----------
    // Each replica is its own InferenceServer (queue + workers +
    // sessions) over the same compiled artifact; the router gives
    // clients one front door with key affinity, health ejection and
    // transparent failover. Both replicas charge one deliberately
    // tiny admission budget so the overload path is visible too.
    std::printf("\nrouting across 2 replicas (consistent hash, shared "
                "admission budget)...\n");
    auto admission = std::make_shared<AdmissionController>(
        AdmissionOptions{/*max_queued_samples=*/8, /*max_queued_bytes=*/0,
                         /*fair_share_pressure=*/0.5});
    RouterOptions router_opts;
    router_opts.eject_after_failures = 2;
    ShardRouter router(router_opts);
    std::vector<std::shared_ptr<InferenceServer>> replicas;
    for (int i = 0; i < 2; ++i) {
        ServerOptions sopts;
        sopts.workers = 2;
        sopts.max_batch = 8;
        sopts.admission = admission;
        sopts.admission_name = "vgg16-dense";
        replicas.push_back(
            std::make_shared<InferenceServer>(dense.value(), sopts));
        router.addReplica("vgg16-dense", std::make_shared<LocalReplica>(replicas[i]));
    }

    auto routeBurst = [&](int requests, const char* label) {
        int ok = 0, admission_shed = 0;
        Rng burst_rng(7);
        std::vector<std::future<Tensor>> fs;
        for (int i = 0; i < requests; ++i) {
            Tensor in(Shape{1, 3, 32, 32});
            in.fillUniform(burst_rng, -1.0f, 1.0f);
            std::future<Tensor> f;
            // The request key (a user/session id in a real frontend)
            // pins each client to a replica via the hash ring.
            Result<RequestId> r =
                router.trySubmit("vgg16-dense", /*key=*/i, std::move(in), &f);
            if (r.ok()) {
                fs.push_back(std::move(f));
            } else {
                // Every replica refused: an admission refusal keeps
                // its machine-readable slug through the failover.
                ++admission_shed;
                if (admission_shed == 1)
                    std::printf("  %s: first shed [%s] detail=%s\n", label,
                                errorCodeName(r.status().code()),
                                r.status().detail());
            }
        }
        for (auto& f : fs) {
            f.get();
            ++ok;
        }
        // Quiesce: a fulfilled future precedes the worker returning
        // the admission charge by a hair, so wait for the replicas to
        // go idle before the next act measures the budget.
        router.drainAll();
        RouterStats rs = router.stats("vgg16-dense");
        std::printf("  %s: %d served, %d shed | routed %lld, failovers %lld "
                    "| replica0 %s, replica1 %s\n",
                    label, ok, admission_shed,
                    static_cast<long long>(rs.routed),
                    static_cast<long long>(rs.failovers),
                    rs.replicas[0].ejected ? "EJECTED" : "healthy",
                    rs.replicas[1].ejected ? "EJECTED" : "healthy");
    };

    // Act 1 — healthy: 8 requests fit the admission budget; the keys
    // spread across both replicas, no failovers, no shedding.
    routeBurst(8, "both replicas up");

    // Act 2 — outage: shut replica 0 down. Its refusals eject it after
    // eject_after_failures and every request transparently fails over
    // to the survivor — same keys, zero client-visible errors.
    replicas[0]->shutdown();
    routeBurst(8, "replica 0 down  ");

    // Act 3 — overload: a burst past the 8-sample budget. The excess
    // is shed at the front door with a typed kResourceExhausted and an
    // admission_detail slug (cheap and retryable) instead of queueing
    // unboundedly; sustained refusals then eject the survivor too — a
    // replica that only ever refuses is down as far as routing cares.
    routeBurst(24, "overload burst  ");
    AdmissionStats as = admission->stats();
    std::printf("  admission totals: %lld admitted, %lld shed over fair "
                "share, %lld shed on global budget\n",
                static_cast<long long>(as.admitted),
                static_cast<long long>(as.shed_over_fair_share),
                static_cast<long long>(as.shed_global_budget));

    router.shutdownAll();
    std::remove(path.c_str());
    return 0;
}
