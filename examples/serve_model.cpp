/**
 * @file
 * The deployment path end-to-end: compile a zoo model with the full
 * pattern engine, freeze it into a binary artifact, reload it the way a
 * serving host would, and drive a burst of asynchronous requests
 * through the micro-batching inference server.
 *
 * Build & run:   cmake -B build && cmake --build build -j
 *                ./build/examples/serve_model
 */
#include <cstdio>
#include <future>
#include <vector>

#include "core/patdnn.h"
#include "util/table.h"

using namespace patdnn;

int
main()
{
    // Compile once (training + execution-code-generation products all
    // land in the CompiledModel), as a model-build farm would.
    Model model = buildVGG16(Dataset::kCifar10);
    DeviceSpec device = makeCpuDevice(8);
    std::printf("compiling %s for %s (pattern engine)...\n",
                model.name().c_str(), device.name.c_str());
    CompiledModel compiled(model, FrameworkKind::kPatDnn, device);
    std::printf("conv weights: %lld non-zero of %lld dense (%.1fx compression)\n",
                static_cast<long long>(compiled.convNonZeros()),
                static_cast<long long>(compiled.convDense()),
                static_cast<double>(compiled.convDense()) /
                    static_cast<double>(compiled.convNonZeros()));

    // Freeze to a distributable artifact and reload it (checksum +
    // FKW invariants re-validated on the way in).
    const std::string path = "vgg16_cifar10.pdnn";
    std::string error;
    if (!saveModel(compiled, path, &error)) {
        std::printf("save failed: %s\n", error.c_str());
        return 1;
    }
    std::shared_ptr<CompiledModel> loaded = loadModel(path, device, &error);
    if (!loaded) {
        std::printf("load failed: %s\n", error.c_str());
        return 1;
    }
    std::printf("artifact %s round-tripped\n", path.c_str());

    // Serve a burst of async requests; the server micro-batches
    // compatible inputs along N behind the scenes.
    ServerOptions opts;
    opts.workers = 2;
    opts.max_batch = 8;
    auto server = serve(loaded, opts);
    constexpr int kBurst = 32;
    Rng rng(42);
    std::vector<std::future<Tensor>> futures;
    futures.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
        Tensor in(Shape{1, 3, 32, 32});
        in.fillUniform(rng, -1.0f, 1.0f);
        futures.push_back(server->submit(std::move(in)));
    }
    for (auto& f : futures)
        f.get();
    server->drain();

    ServerStats stats = server->stats();
    Table table({"metric", "value"});
    table.addRow({"requests completed", Table::num(stats.completed, 0)});
    table.addRow({"model invocations", Table::num(stats.batches, 0)});
    table.addRow({"avg batch (samples)", Table::num(stats.avg_batch)});
    table.addRow({"p50 latency (ms)", Table::num(stats.p50_ms)});
    table.addRow({"p99 latency (ms)", Table::num(stats.p99_ms)});
    table.addRow({"throughput (req/s)", Table::num(stats.throughput_rps, 1)});
    table.print();

    std::remove(path.c_str());
    return 0;
}
