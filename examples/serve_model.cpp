/**
 * @file
 * The deployment path end-to-end: compile a zoo model with the full
 * pattern engine, freeze it into a binary artifact (header v3 records
 * the compile options + device fingerprint), reload it the way a
 * serving host would, and serve it from a multi-model ModelRegistry —
 * two named models sharing one compute pool, a linger window
 * coalescing the sparse tail of the request stream, and a deadline on
 * every request so backlogged work is shed, not computed.
 *
 * Build & run:   cmake -B build && cmake --build build -j
 *                ./build/examples/serve_model
 */
#include <cstdio>
#include <future>
#include <vector>

#include "core/patdnn.h"
#include "util/table.h"

using namespace patdnn;

int
main()
{
    // Compile once via the Compiler pipeline facade (training +
    // execution-code-generation products all land in the
    // CompiledModel), as a model-build farm would.
    Model model = buildVGG16(Dataset::kCifar10);
    DeviceSpec device = makeCpuDevice(8);
    std::printf("compiling %s for %s (pattern engine)...\n",
                model.name().c_str(), device.name.c_str());
    Compiler compiler(device);
    Result<std::shared_ptr<CompiledModel>> built = compiler.compile(model);
    if (!built.ok()) {
        std::printf("compile failed: %s\n", built.status().toString().c_str());
        return 1;
    }
    std::shared_ptr<CompiledModel> compiled = std::move(built).value();
    std::printf("conv weights: %lld non-zero of %lld dense (%.1fx compression)\n",
                static_cast<long long>(compiled->convNonZeros()),
                static_cast<long long>(compiled->convDense()),
                static_cast<double>(compiled->convDense()) /
                    static_cast<double>(compiled->convNonZeros()));

    // Freeze to a distributable artifact and inspect its provenance on
    // the way back in (checksum + FKW invariants re-validated; the v3
    // header carries the compile options + device fingerprint). Every
    // failure is a typed Status: code() says what class of problem,
    // detail() the exact artifact failure mode, message() the prose.
    const std::string path = "vgg16_cifar10.pdnn";
    Status saved = saveModel(*compiled, path);
    if (!saved.ok()) {
        std::printf("save failed: %s\n", saved.toString().c_str());
        return 1;
    }
    ArtifactInfo info;
    Result<std::shared_ptr<CompiledModel>> reloaded =
        loadModel(path, device, ArtifactLoadOptions{}, &info);
    if (!reloaded.ok()) {
        std::printf("load failed [%s]: %s\n",
                    errorCodeName(reloaded.status().code()),
                    reloaded.status().message().c_str());
        return 1;
    }
    std::shared_ptr<CompiledModel> loaded = std::move(reloaded).value();
    std::printf("artifact %s round-tripped: v%u, tuned on %s, pool width %d, "
                "%d patterns, connectivity %.1f\n",
                path.c_str(), info.version, isaName(info.tuned_isa),
                info.pool_width, info.compile_opts.pattern_count,
                info.compile_opts.connectivity_rate);

    // One serving process, several named models, one shared compute
    // pool: the registry routes by name. A dense compilation of the
    // same net stands in for "a second model".
    RegistryOptions ropts;
    ropts.device = device;
    ropts.server.workers = 2;
    ropts.server.max_batch = 8;
    ropts.server.max_linger_ms = 2.0;  // Coalesce the sparse tail.
    auto registry = serveRegistry(ropts);
    Compiler registry_compiler(registry->device());
    Result<std::shared_ptr<CompiledModel>> dense =
        registry_compiler.compile(model, FrameworkKind::kPatDnnDense);
    if (!dense.ok()) {
        std::printf("compile failed: %s\n", dense.status().toString().c_str());
        return 1;
    }
    Status added = registry->add("vgg16-pattern", loaded);
    if (added.ok())
        added = registry->add("vgg16-dense", dense.value());
    if (!added.ok()) {
        std::printf("registry add failed: %s\n", added.toString().c_str());
        return 1;
    }

    // A burst of async requests against both models; every request
    // carries a deadline so a backlogged server sheds instead of
    // serving stale work.
    constexpr int kBurst = 32;
    Rng rng(42);
    std::vector<std::future<Tensor>> futures;
    futures.reserve(2 * kBurst);
    for (int i = 0; i < kBurst; ++i) {
        SubmitOptions sopts;
        sopts.deadline = registry->deadlineIn(10000.0);
        for (const char* name : {"vgg16-pattern", "vgg16-dense"}) {
            Tensor in(Shape{1, 3, 32, 32});
            in.fillUniform(rng, -1.0f, 1.0f);
            futures.push_back(registry->submit(name, std::move(in), sopts));
        }
    }
    int completed = 0, shed = 0;
    for (auto& f : futures) {
        try {
            f.get();
            ++completed;
        } catch (const ServeError& e) {
            // One exception type for every serving failure; dispatch
            // on the code instead of the type.
            if (e.code() != ErrorCode::kDeadlineExceeded)
                throw;
            ++shed;
        }
    }
    registry->drainAll();

    Table table({"model", "completed", "batches", "avg batch", "p50 ms",
                 "p99 ms", "shed"});
    for (const std::string& name : registry->names()) {
        ServerStats stats = registry->stats(name);
        table.addRow({name, Table::num(stats.completed, 0),
                      Table::num(stats.batches, 0), Table::num(stats.avg_batch),
                      Table::num(stats.p50_ms), Table::num(stats.p99_ms),
                      Table::num(stats.deadline_exceeded, 0)});
    }
    table.print();
    std::printf("client view: %d completed, %d deadline-shed\n", completed, shed);

    registry->shutdownAll();
    std::remove(path.c_str());
    return 0;
}
