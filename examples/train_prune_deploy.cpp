/**
 * @file
 * End-to-end PatDNN pipeline (the paper's Fig. 5) on a trainable CNN:
 *
 *   1. train a small CNN on the SyntheticShapes dataset,
 *   2. compress: mine the pattern set + extended-ADMM joint kernel-
 *      pattern / connectivity pruning + masked retraining,
 *   3. compile every conv layer (FKR + FKW + LR) and execute the
 *      pattern engine, comparing accuracy and speed against dense.
 */
#include <cstdio>

#include "core/patdnn.h"
#include "util/stats.h"

using namespace patdnn;

int
main()
{
    std::printf("[1/3] training a small CNN on SyntheticShapes...\n");
    SyntheticShapes data(4, 12, 1, 224, 96, 2024);
    Net net = buildVggStyleNet(4, 12, 1, 8, 99);
    TrainConfig tc;
    tc.epochs = 5;
    tc.batch_size = 16;
    tc.lr = 2e-3f;
    TrainResult base = trainNet(net, data, tc);
    std::printf("      dense test accuracy: %.1f%%\n", 100 * base.test_accuracy);

    // One Compiler drives the rest of the pipeline: stage 1 compress,
    // then stage 2 per-layer compiles, all with typed Result errors.
    DeviceSpec device = makeCpuDevice(8);
    Compiler compiler(device);  // 8 patterns / 3.6x are the defaults.

    std::printf("[2/3] ADMM pattern + connectivity pruning (8 patterns, 3.6x)...\n");
    AdmmConfig admm;
    admm.admm_iterations = 2;
    admm.epochs_per_iteration = 2;
    admm.retrain_epochs = 4;
    Result<CompressResult> compressed = compiler.compress(net, data, admm);
    if (!compressed.ok()) {
        std::printf("compress failed: %s\n",
                    compressed.status().toString().c_str());
        return 1;
    }
    CompressResult& comp = compressed.value();
    std::printf("      pruned accuracy: %.1f%% (dense %.1f%%), CONV compression "
                "%.1fx\n",
                100 * comp.admm.test_accuracy, 100 * comp.admm.dense_accuracy,
                comp.admm.conv_compression);
    for (size_t i = 0; i < comp.admm.trace.pattern_residual.size(); ++i)
        std::printf("      ADMM iter %zu: loss %.3f, |W-Proj(W)|/|W| pattern %.3f "
                    "connectivity %.3f\n",
                    i, comp.admm.trace.loss[i], comp.admm.trace.pattern_residual[i],
                    comp.admm.trace.connectivity_residual[i]);

    std::printf("[3/3] compiling conv layers for the mobile-CPU device...\n");
    auto convs = net.convLayers();
    double dense_ms = 0.0, pattern_ms = 0.0;
    Rng rng(5);
    for (auto* conv : convs) {
        const ConvDesc& d = conv->desc();
        Tensor weight = conv->weight();  // Already constraint-satisfying.
        Result<CompiledLayer> result =
            compiler.compileLayer(d, std::move(weight), comp.pattern_set);
        if (!result.ok()) {
            std::printf("compile failed: %s\n", result.status().toString().c_str());
            return 1;
        }
        CompiledLayer layer = std::move(result).value();
        Tensor in(Shape{1, d.cin, d.h, d.w});
        in.fillUniform(rng, 0.0f, 1.0f);
        Tensor out = makeConvOutput(d, 1);
        pattern_ms += medianTimeMs([&] { layer.engine->run(in, out); }, 1, 3);
        // Dense comparison on the same geometry.
        Tensor dense_w(Shape{d.cout, d.cin, d.kh, d.kw});
        dense_w.fillHe(rng, d.cin * 9);
        Im2colConv dense(d, &dense_w, device);
        dense_ms += medianTimeMs([&] { dense.run(in, out); }, 1, 3);
        std::printf("      %-8s  %s  kernels kept %lld/%lld\n", d.name.c_str(),
                    d.filterShapeStr().c_str(),
                    static_cast<long long>(layer.fkw->kernelCount()),
                    static_cast<long long>(d.cout * d.cin));
    }
    std::printf("\nconv stack: dense %.2f ms -> pattern engine %.2f ms (%.2fx)\n",
                dense_ms, pattern_ms, dense_ms / pattern_ms);
    std::printf("accuracy:   dense %.1f%% -> pruned %.1f%%\n",
                100 * comp.admm.dense_accuracy, 100 * comp.admm.test_accuracy);
    return 0;
}
