/**
 * @file
 * Quickstart: compress one conv layer with pattern + connectivity
 * pruning, compile it for the simulated mobile CPU (FKR + FKW + LR +
 * auto-tune) and run it, verifying against the reference convolution.
 *
 * Build & run:   cmake -B build -G Ninja && cmake --build build
 *                ./build/examples/quickstart
 */
#include <cstdio>

#include "core/patdnn.h"
#include "util/stats.h"

using namespace patdnn;

int
main()
{
    // A VGG-class layer: 128 filters over 64 channels at 56x56.
    ConvDesc desc{"conv3_1", 64, 128, 3, 3, 56, 56, 1, 1, 1, 1};
    Rng rng(7);
    Tensor weight(Shape{desc.cout, desc.cin, desc.kh, desc.kw});
    weight.fillHe(rng, desc.cin * 9);

    // Stage 1 (training side): design an 8-pattern candidate set from
    // the layer's natural patterns. On a trainable net you would call
    // compress() instead — see examples/train_prune_deploy.
    std::vector<const Tensor*> ws = {&weight};
    PatternSet set = designPatternSet(ws, 8);
    std::printf("pattern candidate set (top natural patterns):\n");
    for (int i = 0; i < set.size(); ++i)
        std::printf("-- pattern %d --\n%s\n", i,
                    set.patterns[static_cast<size_t>(i)].str().c_str());

    // Stage 2 (compiler side): joint projection, FKR, FKW packing,
    // LR construction and GA auto-tuning for this device. The Compiler
    // facade returns Result<T>: a malformed descriptor or pattern set
    // comes back as a typed kInvalidArgument instead of an abort.
    DeviceSpec device = makeCpuDevice(8);
    CompileOptions copts;
    copts.connectivity_rate = 3.6;
    Compiler compiler(device, copts);
    Result<CompiledLayer> compiled =
        compiler.compileLayer(desc, weight, set, /*auto_tune=*/true);
    if (!compiled.ok()) {
        std::printf("compile failed: %s\n", compiled.status().toString().c_str());
        return 1;
    }
    CompiledLayer& layer = compiled.value();
    std::printf("layerwise representation (LR):\n%s\n", layer.lr.str().c_str());
    std::printf("FKW storage: %lld non-empty kernels, %.1f KB weights, %.1f KB "
                "index structures\n",
                static_cast<long long>(layer.fkw->kernelCount()),
                layer.fkw->weights.size() * 4.0 / 1024.0,
                layer.fkw->indexBytes() / 1024.0);

    // Execute and verify against the dense reference on the same
    // pruned weights.
    Tensor in(Shape{1, desc.cin, desc.h, desc.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor out = makeConvOutput(desc, 1);
    Timer t;
    layer.engine->run(in, out);
    double ms = t.elapsedMs();

    Tensor pruned = fkwToDense(*layer.fkw);
    Tensor expect = makeConvOutput(desc, 1);
    convReference(desc, pruned, in, expect);
    std::printf("pattern engine: %.2f ms, max |err| vs reference = %.2e\n", ms,
                Tensor::maxAbsDiff(out, expect));
    return 0;
}
