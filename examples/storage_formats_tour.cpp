/**
 * @file
 * A guided tour of the compressed-weight machinery on one small layer:
 * natural-pattern mining, joint projection, filter kernel reorder and
 * the five FKW arrays of Fig. 10 — printed so the format can be read
 * against the paper's worked example.
 */
#include <cstdio>

#include "core/patdnn.h"

using namespace patdnn;

int
main()
{
    // Small enough to print: 4 filters, 4 input channels.
    ConvDesc desc{"demo", 4, 4, 3, 3, 8, 8, 1, 1, 1, 1};
    Rng rng(20);
    Tensor weight(Shape{4, 4, 3, 3});
    weight.fillNormal(rng);

    PatternSet set = canonicalPatternSet(2);  // Two patterns, as in Fig. 10.
    std::printf("pattern 1:\n%s\npattern 2:\n%s\n\n", set.patterns[0].str().c_str(),
                set.patterns[1].str().c_str());

    // Joint projection: keep 9 of 16 kernels, each on its best pattern.
    PatternAssignment asg = projectJoint(weight, set, 9);
    std::printf("pattern assignment (rows = filters, -1 = kernel removed):\n");
    for (int64_t f = 0; f < 4; ++f) {
        std::printf("  filter %lld: ", static_cast<long long>(f));
        for (int64_t k = 0; k < 4; ++k)
            std::printf("%2d ", asg.at(f, k));
        std::printf("\n");
    }

    FkrResult fkr = filterKernelReorder(asg);
    std::printf("\nafter FKR, groups (begin, end, kernels-per-filter): ");
    for (const auto& g : fkr.groups)
        std::printf("(%d, %d, %d) ", g.begin, g.end, g.length);

    FkwLayer fkw = buildFkw(weight, set, asg, fkr);
    Status valid = validateFkw(fkw);
    if (!valid.ok()) {
        std::printf("\nFKW validation failed: %s\n", valid.toString().c_str());
        return 1;
    }
    auto print_arr = [](const char* name, const std::vector<int32_t>& v) {
        std::printf("  %-8s:", name);
        for (int32_t x : v)
            std::printf(" %d", x);
        std::printf("\n");
    };
    std::printf("\n\nFKW arrays (cf. paper Fig. 10):\n");
    print_arr("offset", fkw.offset);
    print_arr("reorder", fkw.reorder);
    print_arr("index", fkw.index);
    print_arr("stride", fkw.stride);
    std::printf("  weights : %zu values (%d per kernel)\n", fkw.weights.size(),
                fkw.entries);

    CsrWeights csr = buildCsr(weight);
    std::printf("\nindex overhead: FKW %zu bytes vs CSR %zu bytes (%.1f%% saved)\n",
                fkw.indexBytes(), csr.indexBytes(),
                100.0 * (1.0 - static_cast<double>(fkw.indexBytes()) /
                                   static_cast<double>(csr.indexBytes())));

    // Round trip proves the format is lossless.
    Tensor back = fkwToDense(fkw);
    std::printf("round-trip max |err| = %.2e\n", Tensor::maxAbsDiff(weight, back));
    return 0;
}
