/**
 * @file
 * Latency sweep: the motivating experiment of the paper's intro — run
 * the VGG-16 conv stack across engines and simulated platforms and
 * see where "real-time" (33 ms/frame at paper scale) becomes feasible.
 * Spatial dimensions are scaled by PATDNN_BENCH_SCALE (default 4) so
 * the sweep finishes quickly on a host machine.
 */
#include <cstdio>
#include <cstdlib>

#include "core/patdnn.h"
#include "util/table.h"

using namespace patdnn;

namespace {

int64_t
scale()
{
    const char* env = std::getenv("PATDNN_BENCH_SCALE");
    int64_t v = env != nullptr ? std::atoll(env) : 4;
    return v >= 1 ? v : 1;
}

double
stackMs(const std::vector<ConvDesc>& descs, FrameworkKind kind,
        const DeviceSpec& dev)
{
    double total = 0.0;
    for (const auto& d : descs) {
        CompiledConvLayer layer(d, kind, dev);
        total += layer.timeMs(1, 2);
    }
    return total;
}

}  // namespace

int
main()
{
    std::printf("VGG-16 conv-stack latency sweep (spatial scale 1/%lld)\n\n",
                static_cast<long long>(scale()));
    Model vgg = buildVGG16(Dataset::kImageNet);
    std::vector<ConvDesc> descs;
    for (const auto& l : vgg.layers()) {
        if (l.kind != OpKind::kConv)
            continue;
        ConvDesc d = l.conv;
        d.h = std::max<int64_t>(4, d.h / scale());
        d.w = std::max<int64_t>(4, d.w / scale());
        descs.push_back(d);
    }

    struct Platform { const char* label; DeviceSpec dev; };
    Platform platforms[] = {
        {"mobile-cpu-sim (8 threads)", makeCpuDevice(8)},
        {"mobile-gpu-sim (block sched)", makeGpuDevice()},
        {"kirin-980-sim (4 threads)", makeKirin980()},
    };
    Table t({"Platform", "Dense naive", "Dense tuned", "PatDNN sparse",
             "Speedup vs naive"});
    for (auto& p : platforms) {
        double naive = stackMs(descs, FrameworkKind::kTfliteLike, p.dev);
        double tuned = stackMs(descs, FrameworkKind::kMnnLike, p.dev);
        double pat = stackMs(descs, FrameworkKind::kPatDnn, p.dev);
        t.addRow({p.label, Table::num(naive, 1), Table::num(tuned, 1),
                  Table::num(pat, 1), Table::num(naive / pat, 1) + "x"});
    }
    t.print();
    std::printf("\nThe paper's bar: 33 ms/frame for real-time VGG-16 inference; "
                "PatDNN reports 18.9 ms on an Adreno 640.\n");
    return 0;
}
